#include "rt/interpreter.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "rt/dma_expand.hpp"

namespace swatop::rt {

namespace ir = swatop::ir;

Interpreter::Interpreter(sim::CoreGroup& cg, sim::ExecMode mode)
    : cg_(cg), mode_(mode), db_(isa::kernel_cost_db(cg.config())) {}

std::int64_t Interpreter::spm_base(const std::string& buf) const {
  auto it = spm_off_.find(buf);
  SWATOP_CHECK(it != spm_off_.end()) << "unknown SPM buffer '" << buf << "'";
  return it->second;
}

std::string Interpreter::loop_context() const {
  if (loop_stack_.empty()) return "at top level";
  std::ostringstream os;
  os << "at ";
  for (std::size_t i = 0; i < loop_stack_.size(); ++i) {
    if (i > 0) os << " ";
    os << loop_stack_[i].first << "=" << loop_stack_[i].second;
  }
  return os.str();
}

void Interpreter::sanitizer_trip(std::int64_t obs::SanitizerCounters::*ctr,
                                 const std::string& what) {
  cg_.stats().sanitizer.*ctr += 1;
  throw SanitizerError("swATOP sanitizer: " + what);
}

void Interpreter::check_overlap(std::int64_t lo, std::int64_t hi, bool writes,
                                const std::string& who) {
  if (!cg_.config().sanitize.overlap_on()) return;
  for (std::int64_t slot = 0; slot < ir::kMaxReplySlots; ++slot) {
    if (reply_done_[static_cast<std::size_t>(slot)] < 0.0) continue;
    const SlotInfo& si = slot_info_[static_cast<std::size_t>(slot)];
    if (lo >= si.spm_hi || si.spm_lo >= hi) continue;
    if (!writes && !si.writes_spm) continue;  // two readers may share
    std::ostringstream os;
    os << who << " touches SPM floats [" << lo << ", " << hi
       << ") while a DMA " << (si.writes_spm ? "get into" : "put from")
       << " buffer '" << si.buf << "' (reply slot " << slot
       << ", SPM [" << si.spm_lo << ", " << si.spm_hi
       << ")) is still in flight " << loop_context();
    sanitizer_trip(&obs::SanitizerCounters::dma_overlap_trips, os.str());
  }
}

void Interpreter::check_dma_bounds(const ir::Stmt& s, const DmaGeometry& geo) {
  if (!cg_.config().sanitize.bounds_on()) return;
  if (geo.rows <= 0 || geo.cols <= 0) return;
  const auto t = tensors_->find(s.dma.view.tensor);
  const auto it = alloc_floats_.find(t->second);
  if (it == alloc_floats_.end()) return;  // not a named arena allocation
  const std::int64_t r_span = (geo.rows - 1) * s.dma.view.stride_r;
  const std::int64_t c_span = (geo.cols - 1) * s.dma.view.stride_c;
  const std::int64_t lo =
      geo.base + std::min<std::int64_t>(r_span, 0) +
      std::min<std::int64_t>(c_span, 0);
  const std::int64_t hi =
      geo.base + std::max<std::int64_t>(r_span, 0) +
      std::max<std::int64_t>(c_span, 0);
  if (lo >= t->second && hi < t->second + it->second) return;
  std::ostringstream os;
  os << "DMA " << (s.kind == ir::StmtKind::DmaGet ? "get" : "put")
     << " touches floats [" << lo << ", " << hi + 1 << ") of tensor '"
     << s.dma.view.tensor << "' which owns [" << t->second << ", "
     << t->second + it->second << ") -- region " << geo.rows << "x"
     << geo.cols << " strides (" << s.dma.view.stride_r << ", "
     << s.dma.view.stride_c << ") " << loop_context();
  sanitizer_trip(&obs::SanitizerCounters::dma_bounds_trips, os.str());
}

void Interpreter::check_defined(std::int64_t a, std::int64_t n,
                                const std::string& buf,
                                const std::string& who) {
  if (n <= 0) return;
  const sim::SimConfig& cfg = cg_.config();
  for (int r = 0; r < cfg.mesh_rows; ++r) {
    for (int c = 0; c < cfg.mesh_cols; ++c) {
      const std::int64_t p =
          cg_.cluster().at(r, c).spm().first_poisoned(a, n);
      if (p < 0) continue;
      std::ostringstream os;
      os << who << " reads SPM float " << p << " of buffer '" << buf
         << "' (offset " << p - spm_base(buf)
         << " within the buffer) on CPE (" << r << "," << c
         << "), which was never written by a DMA, zero-fill or GEMM "
         << loop_context();
      sanitizer_trip(&obs::SanitizerCounters::spm_poison_trips, os.str());
    }
  }
}

RunResult Interpreter::run(const ir::StmtPtr& root,
                           const dsl::BoundTensors& tensors) {
  cg_.reset_execution();
  obs_ = cg_.observer();
  recording_ = trace_ != nullptr && mode_ == sim::ExecMode::TimingOnly;
  if (recording_) {
    trace_->events.clear();
    trace_->dma_costs.clear();
    trace_->elided_bytes.clear();
    trace_->gemm_extras.clear();
    trace_->complete = false;
  }
  spm_off_.clear();
  reply_done_.assign(static_cast<std::size_t>(ir::kMaxReplySlots), -1.0);
  slot_info_.assign(static_cast<std::size_t>(ir::kMaxReplySlots),
                    SlotInfo{});
  loop_stack_.clear();
  alloc_floats_.clear();
  bias_charged_.clear();
  bytes_elided_ = 0;
  if (cg_.config().sanitize.bounds_on()) {
    for (const auto& a : cg_.mem().allocations())
      alloc_floats_[a.base] = a.size;
  }
  tensors_ = &tensors;
  exec(root);
  for (std::int64_t slot = 0; slot < ir::kMaxReplySlots; ++slot) {
    if (reply_done_[static_cast<std::size_t>(slot)] < 0.0) continue;
    std::ostringstream os;
    os << "program ended with in-flight DMA on reply slot " << slot
       << " (buffer '" << slot_info_[static_cast<std::size_t>(slot)].buf
       << "') -- a DmaWait was skipped or its slot expression is wrong";
    sanitizer_trip(&obs::SanitizerCounters::reply_slot_trips, os.str());
  }
  RunResult r;
  r.cycles = cg_.now();
  r.stats = cg_.stats();
  r.bytes_elided = bytes_elided_;
  if (recording_) {
    trace_->cycles = r.cycles;
    trace_->stats = r.stats;
    trace_->bytes_elided = r.bytes_elided;
    trace_->complete = true;
  }
  if (obs_ != nullptr) {
    if (obs_->tracing()) {
      obs::TraceEvent ev;
      ev.name = mode_ == sim::ExecMode::Functional ? "run (functional)"
                                                   : "run (timing)";
      ev.cat = obs::Category::Run;
      ev.tid = obs::Track::kCluster;
      ev.ts = 0.0;
      ev.dur = cg_.now();
      obs_->trace_event(std::move(ev));
    }
    // Overlay the execution aggregates from the simulator's own
    // accumulators, then snapshot -- the profile's DMA bytes are the priced
    // DMA bytes, not a re-derivation.
    obs_->counters() = cg_.counters_snapshot();
    r.profile = obs::Profile::snapshot(*obs_);
  }
  return r;
}

void Interpreter::exec(const ir::StmtPtr& s) {
  if (s == nullptr) return;
  switch (s->kind) {
    case ir::StmtKind::Seq:
      for (const ir::StmtPtr& c : s->body) exec(c);
      return;
    case ir::StmtKind::For: {
      const std::int64_t n = eval_.eval(s->extent);
      const int slot = eval_.slot_of(s->var);
      loop_stack_.emplace_back(s->var, 0);
      for (std::int64_t i = 0; i < n; ++i) {
        loop_stack_.back().second = i;
        eval_.set(slot, i);
        exec(s->for_body);
      }
      loop_stack_.pop_back();
      return;
    }
    case ir::StmtKind::If:
      if (eval_.eval(s->cond) != 0)
        exec(s->then_s);
      else
        exec(s->else_s);
      return;
    case ir::StmtKind::SpmAlloc: {
      // One alignment rule for single- and double-buffered allocations:
      // each buffer (and each half) spans align_up(buf_floats, 8) floats.
      // ir::spm_footprint, the C emitter and the double-buffering pass all
      // size with the same formula, so the interpreter's layout is the
      // layout every other layer assumes.
      const std::int64_t half = align_up(s->buf_floats, 8);
      const std::int64_t total = s->double_buffered ? 2 * half : half;
      const std::int64_t base = cg_.cluster().spm_alloc(total, s->buf_name);
      // The second half's base must be what dma_expand and the kernels
      // compute from the parity expression: base + parity * half, with
      // both halves vector-aligned.
      SWATOP_CHECK(base % 8 == 0 && (base + half) % 8 == 0)
          << "SPM allocation '" << s->buf_name << "' at " << base
          << " breaks the 8-float alignment the double-buffer offsets "
             "assume";
      spm_off_[s->buf_name] = base;
      if (cg_.config().sanitize.poison_on()) {
        const sim::SimConfig& cfg = cg_.config();
        for (int r = 0; r < cfg.mesh_rows; ++r)
          for (int c = 0; c < cfg.mesh_cols; ++c)
            cg_.cluster().at(r, c).spm().poison(base, total);
      }
      if (obs_ != nullptr && obs_->tracing()) {
        obs::TraceEvent ev;
        ev.name = "spm_alloc " + s->buf_name;
        ev.cat = obs::Category::Spm;
        ev.tid = obs::Track::kCluster;
        ev.ts = cg_.now();
        ev.instant = true;
        ev.arg_name[0] = "floats";
        ev.arg[0] = total;
        ev.arg_name[1] = "offset";
        ev.arg[1] = spm_off_[s->buf_name];
        obs_->trace_event(std::move(ev));
      }
      return;
    }
    case ir::StmtKind::SpmZero:
      exec_zero(*s);
      return;
    case ir::StmtKind::DmaGet:
    case ir::StmtKind::DmaPut:
      exec_dma(*s);
      return;
    case ir::StmtKind::DmaWait: {
      const std::int64_t slot = eval_.eval(s->wait_reply);
      if (slot < 0 || slot >= ir::kMaxReplySlots) {
        std::ostringstream os;
        os << "dma_wait on reply slot " << slot << " outside the "
           << ir::kMaxReplySlots << "-entry reply table " << loop_context();
        sanitizer_trip(&obs::SanitizerCounters::reply_slot_trips, os.str());
      }
      if (reply_done_[static_cast<std::size_t>(slot)] < 0.0) {
        const std::string& buf =
            slot_info_[static_cast<std::size_t>(slot)].buf;
        std::ostringstream os;
        os << "dma_wait on empty reply slot " << slot << " ("
           << (buf.empty() ? std::string("never issued")
                           : "last completed transfer was for buffer '" +
                                 buf + "'")
           << ") " << loop_context();
        sanitizer_trip(&obs::SanitizerCounters::reply_slot_trips, os.str());
      }
      const double done = reply_done_[static_cast<std::size_t>(slot)];
      if (obs_ != nullptr && obs_->tracing() && done > cg_.now()) {
        obs::TraceEvent ev;
        ev.name = "dma_wait";
        ev.cat = obs::Category::Dma;
        ev.tid = obs::Track::kCluster;
        ev.ts = cg_.now();
        ev.dur = done - cg_.now();
        ev.arg_name[0] = "reply";
        ev.arg[0] = slot;
        obs_->trace_event(std::move(ev));
      }
      if (recording_) {
        ReplayEvent rev;
        rev.kind = ReplayEvent::Kind::Wait;
        rev.slot = static_cast<std::int32_t>(slot);
        trace_->events.push_back(rev);
      }
      cg_.wait_until(done);
      reply_done_[static_cast<std::size_t>(slot)] = -1.0;
      return;
    }
    case ir::StmtKind::Gemm:
      exec_gemm(*s);
      return;
    case ir::StmtKind::Comment:
      return;
  }
  SWATOP_UNREACHABLE("bad stmt kind");
}

void Interpreter::exec_zero(const ir::Stmt& s) {
  const std::int64_t off = spm_base(s.buf_name) + eval_.eval(s.zero_off);
  const std::int64_t n = eval_.eval(s.zero_floats);
  if (n <= 0) return;
  check_overlap(off, off + n,
                /*writes=*/true, "spm_zero of buffer '" + s.buf_name + "'");
  const double zero_cycles =
      static_cast<double>(n) / cg_.config().vector_width;
  if (obs_ != nullptr && obs_->tracing()) {
    obs::TraceEvent ev;
    ev.name = "spm_zero " + s.buf_name;
    ev.cat = obs::Category::Compute;
    ev.tid = obs::Track::kCluster;
    ev.ts = cg_.now();
    ev.dur = zero_cycles;
    ev.arg_name[0] = "floats";
    ev.arg[0] = n;
    obs_->trace_event(std::move(ev));
  }
  if (recording_) {
    ReplayEvent ev;
    ev.kind = ReplayEvent::Kind::Compute;
    ev.cycles = zero_cycles;
    trace_->events.push_back(ev);
  }
  // Vector stores, 4 floats per cycle on P1, all CPEs in parallel.
  cg_.advance_compute(zero_cycles);
  if (mode_ != sim::ExecMode::Functional) return;
  const sim::SimConfig& cfg = cg_.config();
  for (int r = 0; r < cfg.mesh_rows; ++r)
    for (int c = 0; c < cfg.mesh_cols; ++c)
      cg_.cluster().at(r, c).spm().fill(off, n, 0.0f);
}

void Interpreter::exec_dma(const ir::Stmt& s) {
  const ir::DmaAttrs& d = s.dma;
  const sim::SimConfig& cfg = cg_.config();
  auto t = tensors_->find(d.view.tensor);
  SWATOP_CHECK(t != tensors_->end())
      << "unbound tensor '" << d.view.tensor << "'";
  const DmaGeometry geo = evaluate_dma(d, eval_, t->second, cfg);
  const std::int64_t spm_at = spm_base(d.spm_buf) + eval_.eval(d.spm_off);
  const std::int64_t slot = eval_.eval(d.reply);
  const bool is_get = d.dir == ir::Direction::MemToSpm;
  if (slot < 0 || slot >= ir::kMaxReplySlots) {
    std::ostringstream os;
    os << "DMA " << (is_get ? "get" : "put") << " of buffer '" << d.spm_buf
       << "' uses reply slot " << slot << " outside the "
       << ir::kMaxReplySlots << "-entry reply table " << loop_context();
    sanitizer_trip(&obs::SanitizerCounters::reply_slot_trips, os.str());
  }
  if (reply_done_[static_cast<std::size_t>(slot)] >= 0.0) {
    std::ostringstream os;
    os << "reply slot " << slot << " already in flight for buffer '"
       << slot_info_[static_cast<std::size_t>(slot)].buf
       << "' when reissued for buffer '" << d.spm_buf << "' "
       << loop_context();
    sanitizer_trip(&obs::SanitizerCounters::reply_slot_trips, os.str());
  }
  check_dma_bounds(s, geo);
  const std::int64_t spm_hi = spm_at + geo.tr * geo.tc;
  check_overlap(spm_at, spm_hi, is_get,
                std::string("DMA ") + (is_get ? "get into" : "put from") +
                    " buffer '" + d.spm_buf + "'");
  if (!is_get && d.epi.any()) apply_epilogue(s, geo, spm_at);
  const sim::DmaCost& cost = dma_cost_cache_.get(d, geo, cg_.dma(), cfg);
  const bool resident =
      resident_ != nullptr && resident_->tensors.count(d.view.tensor) > 0;
  double done;
  if (resident) {
    // Inter-layer residency: the tensor lives distributed in the mesh's
    // SPMs, so this transfer never reaches DRAM or the DMA engine. Count
    // what an unpinned run would have priced.
    bytes_elided_ += cost.bytes_requested;
    done = cg_.now();
    if (recording_) {
      ReplayEvent ev;
      ev.kind = ReplayEvent::Kind::DmaElide;
      ev.slot = static_cast<std::int32_t>(slot);
      trace_->events.push_back(ev);
      trace_->elided_bytes.push_back(cost.bytes_requested);
    }
  } else {
    if (recording_) {
      ReplayEvent ev;
      ev.kind = ReplayEvent::Kind::DmaIssue;
      ev.slot = static_cast<std::int32_t>(slot);
      trace_->events.push_back(ev);
      trace_->dma_costs.push_back(cost);
    }
    done = cg_.dma_issue_cost_at(cost);
  }
  reply_done_[static_cast<std::size_t>(slot)] = done;
  slot_info_[static_cast<std::size_t>(slot)] =
      SlotInfo{d.spm_buf, spm_at, spm_hi, is_get};

  // Elided transfers are invisible to the DMA observability too: traced /
  // per-CPE bytes stay equal to priced bytes by construction.
  if (obs_ != nullptr && !resident) {
    if (obs_->tracing()) {
      obs::TraceEvent ev;
      ev.name = (d.dir == ir::Direction::MemToSpm ? "get " : "put ") +
                d.spm_buf;
      ev.cat = obs::Category::Dma;
      ev.tid = obs::Track::kCluster;
      ev.ts = cg_.now();
      ev.instant = true;
      ev.arg_name[0] = "bytes";
      ev.arg[0] = cost.bytes_requested;
      ev.arg_name[1] = "reply";
      ev.arg[1] = slot;
      obs_->trace_event(std::move(ev));
    }
    // Per-CPE attribution with the same tile-clamp arithmetic the
    // functional copy below walks.
    for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
      for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
        std::int64_t br, bc;
        block_of(d, rid, cid, &br, &bc);
        const std::int64_t vr =
            std::clamp<std::int64_t>(geo.rows - br * geo.tr, 0, geo.tr);
        const std::int64_t vc =
            std::clamp<std::int64_t>(geo.cols - bc * geo.tc, 0, geo.tc);
        if (vr <= 0 || vc <= 0) continue;
        obs::CpeCounters& pc = obs_->cpe(rid * cfg.mesh_cols + cid);
        pc.dma_bytes += vr * vc * static_cast<std::int64_t>(sizeof(float));
        pc.dma_transfers += 1;
      }
    }
  }

  if (mode_ != sim::ExecMode::Functional) return;

  for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
    for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
      std::int64_t br, bc;
      block_of(d, rid, cid, &br, &bc);
      const std::int64_t vr =
          std::clamp<std::int64_t>(geo.rows - br * geo.tr, 0, geo.tr);
      const std::int64_t vc =
          std::clamp<std::int64_t>(geo.cols - bc * geo.tc, 0, geo.tc);
      if (vr <= 0 || vc <= 0) continue;
      sim::Spm& spm = cg_.cluster().at(rid, cid).spm();
      if (d.dir == ir::Direction::SpmToMem && spm.poison_tracking()) {
        // A put drains exactly the valid columns of this CPE's tile; every
        // float it reads must have been defined by a get, zero or GEMM.
        for (std::int64_t j = 0; j < vc; ++j) {
          const std::int64_t p =
              spm.first_poisoned(spm_at + j * geo.tr, vr);
          if (p < 0) continue;
          std::ostringstream os;
          os << "DMA put from buffer '" << d.spm_buf << "' reads SPM float "
             << p << " (offset " << p - spm_base(d.spm_buf)
             << " within the buffer) on CPE (" << rid << "," << cid
             << "), which was never written by a DMA, zero-fill or GEMM "
             << loop_context();
          sanitizer_trip(&obs::SanitizerCounters::spm_poison_trips,
                         os.str());
        }
      }
      const sim::MainMemory::Addr tile_base =
          geo.base + br * geo.tr * d.view.stride_r +
          bc * geo.tc * d.view.stride_c;
      for (std::int64_t j = 0; j < vc; ++j) {
        for (std::int64_t i = 0; i < vr; ++i) {
          const sim::MainMemory::Addr mem_at =
              tile_base + i * d.view.stride_r + j * d.view.stride_c;
          const std::int64_t spm_idx = spm_at + i + j * geo.tr;
          if (d.dir == ir::Direction::MemToSpm)
            spm.write(spm_idx, cg_.mem().read(mem_at));
          else
            cg_.mem().write(mem_at, spm.read(spm_idx));
        }
      }
    }
  }
}

void Interpreter::apply_epilogue(const ir::Stmt& s, const DmaGeometry& geo,
                                 std::int64_t spm_at) {
  const ir::DmaAttrs& d = s.dma;
  const ir::EpilogueAttrs& e = d.epi;
  const sim::SimConfig& cfg = cg_.config();

  // Residual operand: re-read of the same tile geometry from the res view,
  // priced like the get it replaces (the unfused Add pass paid it too, plus
  // a full extra read+write of the main operand).
  sim::MainMemory::Addr res_base = 0;
  if (e.residual) {
    const auto rt = tensors_->find(e.res.tensor);
    SWATOP_CHECK(rt != tensors_->end())
        << "unbound epilogue tensor '" << e.res.tensor << "'";
    ir::DmaAttrs rd;
    rd.view = e.res;
    rd.dir = ir::Direction::MemToSpm;
    rd.scatter = d.scatter;
    rd.rows_to_rid = d.rows_to_rid;
    DmaGeometry rg = geo;
    rg.base = rt->second + eval_.eval(e.res.base);
    res_base = rg.base;
    const sim::DmaCost& rc = dma_cost_cache_.get(rd, rg, cg_.dma(), cfg);
    if (resident_ != nullptr && resident_->tensors.count(e.res.tensor) > 0) {
      bytes_elided_ += rc.bytes_requested;
      if (recording_) {
        ReplayEvent ev;
        ev.kind = ReplayEvent::Kind::SyncElide;
        trace_->events.push_back(ev);
        trace_->elided_bytes.push_back(rc.bytes_requested);
      }
    } else {
      if (recording_) {
        ReplayEvent ev;
        ev.kind = ReplayEvent::Kind::DmaSync;
        trace_->events.push_back(ev);
        trace_->dma_costs.push_back(rc);
      }
      cg_.charge_dma_cost_sync(rc);
    }
  }

  // Bias vector: a tiny get charged once per channel range and run; the
  // vector then stays resident in SPM across the tiles that reuse it.
  sim::MainMemory::Addr bias_base = 0;
  std::int64_t ch0 = 0;
  if (e.bias) {
    const auto bt = tensors_->find("bias");
    SWATOP_CHECK(bt != tensors_->end()) << "unbound epilogue tensor 'bias'";
    bias_base = bt->second;
    ch0 = eval_.eval(e.channel0);
    if (bias_charged_.insert(ch0).second) {
      const std::int64_t nch = e.channels_on_rows ? geo.rows_p : geo.cols_p;
      sim::DmaCpeDesc bd;
      bd.mem_base = bias_base + ch0;
      bd.block = nch;
      bd.stride = 0;
      bd.total = nch;
      bd.dir = sim::DmaDir::MemToSpm;
      if (recording_) {
        // Arithmetically identical to charge_dma_sync (cost once, book,
        // wait); bypassing the reply bookkeeping lets the event carry the
        // priced cost. Recording runs have no observer, so the per-CPE
        // attribution charge_dma_sync would emit is moot.
        const sim::DmaCost bc =
            cg_.dma().cost(std::span<const sim::DmaCpeDesc>(&bd, 1));
        ReplayEvent ev;
        ev.kind = ReplayEvent::Kind::DmaSync;
        trace_->events.push_back(ev);
        trace_->dma_costs.push_back(bc);
        cg_.charge_dma_cost_sync(bc);
      } else {
        cg_.charge_dma_sync(std::span<const sim::DmaCpeDesc>(&bd, 1));
      }
    }
  }

  // The elementwise tail itself: vector ops on the SPM tile, CPEs in
  // parallel.
  const int nops = (e.bias ? 1 : 0) + (e.residual ? 1 : 0) + (e.relu ? 1 : 0);
  const double epi_cycles =
      static_cast<double>(nops) * geo.tr * geo.tc / cfg.vector_width;
  if (recording_) {
    ReplayEvent ev;
    ev.kind = ReplayEvent::Kind::Compute;
    ev.cycles = epi_cycles;
    trace_->events.push_back(ev);
  }
  cg_.advance_compute(epi_cycles);

  if (mode_ != sim::ExecMode::Functional) return;
  for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
    for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
      std::int64_t br, bc;
      block_of(d, rid, cid, &br, &bc);
      const std::int64_t vr =
          std::clamp<std::int64_t>(geo.rows - br * geo.tr, 0, geo.tr);
      const std::int64_t vc =
          std::clamp<std::int64_t>(geo.cols - bc * geo.tc, 0, geo.tc);
      if (vr <= 0 || vc <= 0) continue;
      sim::Spm& spm = cg_.cluster().at(rid, cid).spm();
      for (std::int64_t j = 0; j < vc; ++j) {
        for (std::int64_t i = 0; i < vr; ++i) {
          const std::int64_t gi = br * geo.tr + i;
          const std::int64_t gj = bc * geo.tc + j;
          const std::int64_t idx = spm_at + i + j * geo.tr;
          float v = spm.read(idx);
          if (e.bias)
            v += cg_.mem().read(bias_base + ch0 +
                                (e.channels_on_rows ? gi : gj));
          if (e.residual)
            v += cg_.mem().read(res_base + gi * e.res.stride_r +
                                gj * e.res.stride_c);
          if (e.relu) v = std::max(v, 0.0f);
          spm.write(idx, v);
        }
      }
    }
  }
}

void Interpreter::exec_gemm(const ir::Stmt& s) {
  const ir::GemmAttrs& g = s.gemm;
  SWATOP_CHECK(!g.a_buf.empty())
      << "gemm without SPM bindings -- run DMA inference first";
  prim::SpmGemmArgs args;
  args.M = eval_.eval(g.M);
  args.N = eval_.eval(g.N);
  args.K = eval_.eval(g.K);
  if (args.M == 0 || args.N == 0 || args.K == 0) return;
  args.alpha = g.alpha;
  args.beta = 1.0f;  // accumulator tiles are zeroed / re-fetched upstream
  args.a_spm = spm_base(g.a_buf) + eval_.eval(g.a_off);
  args.b_spm = spm_base(g.b_buf) + eval_.eval(g.b_off);
  args.c_spm = spm_base(g.c_buf) + eval_.eval(g.c_off);
  args.variant = isa::KernelVariant::from_index(g.variant);

  if (cg_.config().sanitize.enabled) {
    const prim::SpmGemmFootprint fp =
        prim::spm_gemm_footprint(args.M, args.N, args.K, cg_.config());
    check_overlap(args.a_spm, args.a_spm + fp.a_floats, false,
                  "gemm read of buffer '" + g.a_buf + "'");
    check_overlap(args.b_spm, args.b_spm + fp.b_floats, false,
                  "gemm read of buffer '" + g.b_buf + "'");
    check_overlap(args.c_spm, args.c_spm + fp.c_floats, true,
                  "gemm accumulation into buffer '" + g.c_buf + "'");
    if (mode_ == sim::ExecMode::Functional &&
        cg_.config().sanitize.poison_on()) {
      // The GEMM reads its whole A/B tiles (broadcast across the mesh) and
      // accumulates into the whole C tile, so all three must be defined.
      check_defined(args.a_spm, fp.a_floats, g.a_buf, "gemm");
      check_defined(args.b_spm, fp.b_floats, g.b_buf, "gemm");
      check_defined(args.c_spm, fp.c_floats, g.c_buf, "gemm");
    }
  }

  const std::uint64_t key =
      (static_cast<std::uint64_t>(args.variant.index()) << 60) ^
      (static_cast<std::uint64_t>(args.M) << 40) ^
      (static_cast<std::uint64_t>(args.N) << 20) ^
      static_cast<std::uint64_t>(args.K);
  const double t0 = cg_.now();
  if (mode_ == sim::ExecMode::Functional) {
    // prim::spm_gemm books the cycles and the kernel-attribution stats
    // (gemm_cycles, reg-comm share, per-CPE pipeline breakdown).
    prim::spm_gemm(cg_, args, mode_, db_);
  } else {
    // TimingOnly fast path: the primitive's cost and pipeline breakdown
    // only depend on the dims and the variant; memoize both in one entry.
    auto it = gemm_cost_memo_.find(key);
    if (it == gemm_cost_memo_.end()) {
      SWATOP_CHECK(
          prim::spm_gemm_valid(args.M, args.N, args.K, args.variant,
                               cg_.config()))
          << "invalid gemm dims (" << args.M << "," << args.N << ","
          << args.K << ") at runtime";
      GemmCost c;
      c.cycles = db_.spm_gemm_cycles(args.variant, args.M, args.N, args.K);
      c.pipe = db_.spm_gemm_pipe(args.variant, args.M, args.N, args.K);
      it = gemm_cost_memo_.emplace(key, c).first;
    }
    if (recording_) {
      ReplayEvent rev;
      rev.kind = ReplayEvent::Kind::Gemm;
      rev.cycles = it->second.cycles;
      trace_->events.push_back(rev);
      trace_->gemm_extras.push_back(ReplayGemmExtra{
          db_.spm_gemm_comm_cycles(), 2 * args.M * args.N * args.K,
          it->second.pipe});
    }
    cg_.advance_compute(it->second.cycles);
    sim::CgStats& st = cg_.stats();
    st.gemm_calls += 1;
    st.flops += 2 * args.M * args.N * args.K;
    st.gemm_cycles += it->second.cycles;
    st.gemm_comm_cycles += db_.spm_gemm_comm_cycles();
    st.pipe.issued_p0 += it->second.pipe.issued_p0;
    st.pipe.issued_p1 += it->second.pipe.issued_p1;
    st.pipe.raw_stall_cycles += it->second.pipe.raw_stall_cycles;
  }

  if (obs_ != nullptr && obs_->tracing()) {
    obs::TraceEvent ev;
    ev.name = "spm_gemm";
    ev.cat = obs::Category::Compute;
    ev.tid = obs::Track::kCluster;
    ev.ts = t0;
    ev.dur = cg_.now() - t0;
    ev.arg_name[0] = "M";
    ev.arg[0] = args.M;
    ev.arg_name[1] = "N";
    ev.arg[1] = args.N;
    ev.arg_name[2] = "K";
    ev.arg[2] = args.K;
    obs_->trace_event(std::move(ev));
  }
}

}  // namespace swatop::rt
