#include "rt/interpreter.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "rt/dma_expand.hpp"

namespace swatop::rt {

namespace ir = swatop::ir;

Interpreter::Interpreter(sim::CoreGroup& cg, sim::ExecMode mode)
    : cg_(cg), mode_(mode), db_(isa::kernel_cost_db(cg.config())) {}

std::int64_t Interpreter::spm_base(const std::string& buf) const {
  auto it = spm_off_.find(buf);
  SWATOP_CHECK(it != spm_off_.end()) << "unknown SPM buffer '" << buf << "'";
  return it->second;
}

RunResult Interpreter::run(const ir::StmtPtr& root,
                           const dsl::BoundTensors& tensors) {
  cg_.reset_execution();
  obs_ = cg_.observer();
  spm_off_.clear();
  reply_done_.assign(256, -1.0);
  tensors_ = &tensors;
  exec(root);
  for (double d : reply_done_)
    SWATOP_CHECK(d < 0.0) << "program ended with in-flight DMA";
  RunResult r;
  r.cycles = cg_.now();
  r.stats = cg_.stats();
  if (obs_ != nullptr) {
    if (obs_->tracing()) {
      obs::TraceEvent ev;
      ev.name = mode_ == sim::ExecMode::Functional ? "run (functional)"
                                                   : "run (timing)";
      ev.cat = obs::Category::Run;
      ev.tid = obs::Track::kCluster;
      ev.ts = 0.0;
      ev.dur = cg_.now();
      obs_->trace_event(std::move(ev));
    }
    // Overlay the execution aggregates from the simulator's own
    // accumulators, then snapshot -- the profile's DMA bytes are the priced
    // DMA bytes, not a re-derivation.
    obs_->counters() = cg_.counters_snapshot();
    r.profile = obs::Profile::snapshot(*obs_);
  }
  return r;
}

void Interpreter::exec(const ir::StmtPtr& s) {
  if (s == nullptr) return;
  switch (s->kind) {
    case ir::StmtKind::Seq:
      for (const ir::StmtPtr& c : s->body) exec(c);
      return;
    case ir::StmtKind::For: {
      const std::int64_t n = eval_.eval(s->extent);
      const int slot = eval_.slot_of(s->var);
      for (std::int64_t i = 0; i < n; ++i) {
        eval_.set(slot, i);
        exec(s->for_body);
      }
      return;
    }
    case ir::StmtKind::If:
      if (eval_.eval(s->cond) != 0)
        exec(s->then_s);
      else
        exec(s->else_s);
      return;
    case ir::StmtKind::SpmAlloc: {
      const std::int64_t half = align_up(s->buf_floats, 8);
      const std::int64_t total = s->double_buffered ? 2 * half : s->buf_floats;
      spm_off_[s->buf_name] = cg_.cluster().spm_alloc(total, s->buf_name);
      if (obs_ != nullptr && obs_->tracing()) {
        obs::TraceEvent ev;
        ev.name = "spm_alloc " + s->buf_name;
        ev.cat = obs::Category::Spm;
        ev.tid = obs::Track::kCluster;
        ev.ts = cg_.now();
        ev.instant = true;
        ev.arg_name[0] = "floats";
        ev.arg[0] = total;
        ev.arg_name[1] = "offset";
        ev.arg[1] = spm_off_[s->buf_name];
        obs_->trace_event(std::move(ev));
      }
      return;
    }
    case ir::StmtKind::SpmZero:
      exec_zero(*s);
      return;
    case ir::StmtKind::DmaGet:
    case ir::StmtKind::DmaPut:
      exec_dma(*s);
      return;
    case ir::StmtKind::DmaWait: {
      const std::int64_t slot = eval_.eval(s->wait_reply);
      SWATOP_CHECK(slot >= 0 && slot < 256 &&
                   reply_done_[static_cast<std::size_t>(slot)] >= 0.0)
          << "dma_wait on empty reply slot " << slot;
      const double done = reply_done_[static_cast<std::size_t>(slot)];
      if (obs_ != nullptr && obs_->tracing() && done > cg_.now()) {
        obs::TraceEvent ev;
        ev.name = "dma_wait";
        ev.cat = obs::Category::Dma;
        ev.tid = obs::Track::kCluster;
        ev.ts = cg_.now();
        ev.dur = done - cg_.now();
        ev.arg_name[0] = "reply";
        ev.arg[0] = slot;
        obs_->trace_event(std::move(ev));
      }
      cg_.wait_until(done);
      reply_done_[static_cast<std::size_t>(slot)] = -1.0;
      return;
    }
    case ir::StmtKind::Gemm:
      exec_gemm(*s);
      return;
    case ir::StmtKind::Comment:
      return;
  }
  SWATOP_UNREACHABLE("bad stmt kind");
}

void Interpreter::exec_zero(const ir::Stmt& s) {
  const std::int64_t off = spm_base(s.buf_name) + eval_.eval(s.zero_off);
  const std::int64_t n = eval_.eval(s.zero_floats);
  if (n <= 0) return;
  if (obs_ != nullptr && obs_->tracing()) {
    obs::TraceEvent ev;
    ev.name = "spm_zero " + s.buf_name;
    ev.cat = obs::Category::Compute;
    ev.tid = obs::Track::kCluster;
    ev.ts = cg_.now();
    ev.dur = static_cast<double>(n) / cg_.config().vector_width;
    ev.arg_name[0] = "floats";
    ev.arg[0] = n;
    obs_->trace_event(std::move(ev));
  }
  // Vector stores, 4 floats per cycle on P1, all CPEs in parallel.
  cg_.advance_compute(static_cast<double>(n) /
                      cg_.config().vector_width);
  if (mode_ != sim::ExecMode::Functional) return;
  const sim::SimConfig& cfg = cg_.config();
  for (int r = 0; r < cfg.mesh_rows; ++r)
    for (int c = 0; c < cfg.mesh_cols; ++c)
      cg_.cluster().at(r, c).spm().fill(off, n, 0.0f);
}

void Interpreter::exec_dma(const ir::Stmt& s) {
  const ir::DmaAttrs& d = s.dma;
  const sim::SimConfig& cfg = cg_.config();
  auto t = tensors_->find(d.view.tensor);
  SWATOP_CHECK(t != tensors_->end())
      << "unbound tensor '" << d.view.tensor << "'";
  const DmaGeometry geo = evaluate_dma(d, eval_, t->second, cfg);
  const std::int64_t spm_at = spm_base(d.spm_buf) + eval_.eval(d.spm_off);
  const sim::DmaCost& cost = dma_cost_cache_.get(d, geo, cg_.dma(), cfg);
  const double done = cg_.dma_issue_cost_at(cost);
  const std::int64_t slot = eval_.eval(d.reply);
  SWATOP_CHECK(slot >= 0 && slot < 256 &&
               reply_done_[static_cast<std::size_t>(slot)] < 0.0)
      << "reply slot " << slot << " already in flight";
  reply_done_[static_cast<std::size_t>(slot)] = done;

  if (obs_ != nullptr) {
    if (obs_->tracing()) {
      obs::TraceEvent ev;
      ev.name = (d.dir == ir::Direction::MemToSpm ? "get " : "put ") +
                d.spm_buf;
      ev.cat = obs::Category::Dma;
      ev.tid = obs::Track::kCluster;
      ev.ts = cg_.now();
      ev.instant = true;
      ev.arg_name[0] = "bytes";
      ev.arg[0] = cost.bytes_requested;
      ev.arg_name[1] = "reply";
      ev.arg[1] = slot;
      obs_->trace_event(std::move(ev));
    }
    // Per-CPE attribution with the same tile-clamp arithmetic the
    // functional copy below walks.
    for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
      for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
        std::int64_t br, bc;
        block_of(d, rid, cid, &br, &bc);
        const std::int64_t vr =
            std::clamp<std::int64_t>(geo.rows - br * geo.tr, 0, geo.tr);
        const std::int64_t vc =
            std::clamp<std::int64_t>(geo.cols - bc * geo.tc, 0, geo.tc);
        if (vr <= 0 || vc <= 0) continue;
        obs::CpeCounters& pc = obs_->cpe(rid * cfg.mesh_cols + cid);
        pc.dma_bytes += vr * vc * static_cast<std::int64_t>(sizeof(float));
        pc.dma_transfers += 1;
      }
    }
  }

  if (mode_ != sim::ExecMode::Functional) return;

  for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
    for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
      std::int64_t br, bc;
      block_of(d, rid, cid, &br, &bc);
      const std::int64_t vr =
          std::clamp<std::int64_t>(geo.rows - br * geo.tr, 0, geo.tr);
      const std::int64_t vc =
          std::clamp<std::int64_t>(geo.cols - bc * geo.tc, 0, geo.tc);
      if (vr <= 0 || vc <= 0) continue;
      sim::Spm& spm = cg_.cluster().at(rid, cid).spm();
      const sim::MainMemory::Addr tile_base =
          geo.base + br * geo.tr * d.view.stride_r +
          bc * geo.tc * d.view.stride_c;
      for (std::int64_t j = 0; j < vc; ++j) {
        for (std::int64_t i = 0; i < vr; ++i) {
          const sim::MainMemory::Addr mem_at =
              tile_base + i * d.view.stride_r + j * d.view.stride_c;
          const std::int64_t spm_idx = spm_at + i + j * geo.tr;
          if (d.dir == ir::Direction::MemToSpm)
            spm.write(spm_idx, cg_.mem().read(mem_at));
          else
            cg_.mem().write(mem_at, spm.read(spm_idx));
        }
      }
    }
  }
}

void Interpreter::exec_gemm(const ir::Stmt& s) {
  const ir::GemmAttrs& g = s.gemm;
  SWATOP_CHECK(!g.a_buf.empty())
      << "gemm without SPM bindings -- run DMA inference first";
  prim::SpmGemmArgs args;
  args.M = eval_.eval(g.M);
  args.N = eval_.eval(g.N);
  args.K = eval_.eval(g.K);
  if (args.M == 0 || args.N == 0 || args.K == 0) return;
  args.alpha = g.alpha;
  args.beta = 1.0f;  // accumulator tiles are zeroed / re-fetched upstream
  args.a_spm = spm_base(g.a_buf) + eval_.eval(g.a_off);
  args.b_spm = spm_base(g.b_buf) + eval_.eval(g.b_off);
  args.c_spm = spm_base(g.c_buf) + eval_.eval(g.c_off);
  args.variant = isa::KernelVariant::from_index(g.variant);

  const std::uint64_t key =
      (static_cast<std::uint64_t>(args.variant.index()) << 60) ^
      (static_cast<std::uint64_t>(args.M) << 40) ^
      (static_cast<std::uint64_t>(args.N) << 20) ^
      static_cast<std::uint64_t>(args.K);
  const double t0 = cg_.now();
  if (obs_ != nullptr) {
    // Per-CPE pipeline attribution from the same kernel-cost fits that
    // price the call; memoized alongside the cycle cost.
    auto pit = gemm_pipe_memo_.find(key);
    if (pit == gemm_pipe_memo_.end()) {
      pit = gemm_pipe_memo_
                .emplace(key, db_.spm_gemm_pipe(args.variant, args.M,
                                                args.N, args.K))
                .first;
    }
    obs::PipeCounters& pipe = obs_->counters().pipe;
    pipe.issued_p0 += pit->second.issued_p0;
    pipe.issued_p1 += pit->second.issued_p1;
    pipe.raw_stall_cycles += pit->second.raw_stall_cycles;
  }

  if (mode_ == sim::ExecMode::Functional) {
    prim::spm_gemm(cg_, args, mode_, db_);
  } else {
    // TimingOnly fast path: the primitive's cost only depends on the dims
    // and the variant; memoize it.
    auto it = gemm_cost_memo_.find(key);
    double cycles;
    if (it != gemm_cost_memo_.end()) {
      cycles = it->second;
    } else {
      SWATOP_CHECK(
          prim::spm_gemm_valid(args.M, args.N, args.K, args.variant,
                               cg_.config()))
          << "invalid gemm dims (" << args.M << "," << args.N << ","
          << args.K << ") at runtime";
      cycles = db_.spm_gemm_cycles(args.variant, args.M, args.N, args.K);
      gemm_cost_memo_.emplace(key, cycles);
    }
    cg_.advance_compute(cycles);
    cg_.stats().gemm_calls += 1;
    cg_.stats().flops += 2 * args.M * args.N * args.K;
  }

  if (obs_ != nullptr && obs_->tracing()) {
    obs::TraceEvent ev;
    ev.name = "spm_gemm";
    ev.cat = obs::Category::Compute;
    ev.tid = obs::Track::kCluster;
    ev.ts = t0;
    ev.dur = cg_.now() - t0;
    ev.arg_name[0] = "M";
    ev.arg[0] = args.M;
    ev.arg_name[1] = "N";
    ev.arg[1] = args.N;
    ev.arg_name[2] = "K";
    ev.arg[2] = args.K;
    obs_->trace_event(std::move(ev));
  }
}

}  // namespace swatop::rt
