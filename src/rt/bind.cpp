#include "rt/bind.hpp"

namespace swatop::rt {

dsl::BoundTensors bind_tensors(sim::CoreGroup& cg,
                               const dsl::OperatorDef& op) {
  dsl::BoundTensors bt;
  for (const dsl::TensorSpec& t : op.tensors())
    bt[t.name] = cg.mem().alloc(t.floats, t.name);
  return bt;
}

}  // namespace swatop::rt
