// Trace-replay fast path, recording side (ROADMAP item 2; in the spirit of
// ONNXim's trace-driven measurement).
//
// A timing-only interpreter run walks every loop iteration, evaluates every
// extent/address expression and prices every primitive. All of that work
// resolves, for a fixed (program, tensor binding, machine), into a *flat
// schedule of booking events* on the core group: compute advances, DMA
// issues with a fully priced cost, waits, synchronous charges. Recording
// that flat schedule once lets later measurements of a structurally
// identical candidate replay the event list with no per-iteration
// expression evaluation -- and, because each event carries the exact
// double-precision operands the interpreter handed the core group, the
// replayed clock and statistics are bit-identical to a fresh interpreter
// run (tune/replay.cpp holds the replay loop and the differential oracle).
//
// The replay loop is memory-bound on the event stream (a trace of a deep
// CONV layer runs to hundreds of thousands of events), so the layout is
// split: a 16-byte base event carries what every kind needs, and the bulky
// per-kind payloads (DMA costs, GEMM statistics, elided byte counts) live
// in side streams consumed sequentially -- the base stream fixes the global
// booking order, so each side stream's own order is enough.
//
// This header lives in rt/ so the interpreter can record without depending
// on the tuner; the replay executor (tune/replay.hpp) consumes it.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/counters.hpp"
#include "sim/core_group.hpp"
#include "sim/dma.hpp"

namespace swatop::rt {

/// One booking the timing interpreter made against the core group. The
/// event kinds mirror the CoreGroup entry points one-to-one so the replay
/// loop can reproduce the exact arithmetic (same operations, same order).
struct ReplayEvent {
  enum class Kind : std::uint8_t {
    Compute,    ///< advance_compute(cycles): zero-fills, epilogue vector ops
    DmaIssue,   ///< async book_dma(cost); completion parked on `slot`
    DmaElide,   ///< resident operand: no booking, bytes counted, slot = now
    DmaSync,    ///< book_dma(cost) + wait (epilogue residual / bias charge)
    SyncElide,  ///< resident epilogue residual: bytes counted only
    Wait,       ///< dma_wait on `slot` (wait_until + slot clear)
    Gemm,       ///< advance_compute(cycles) + GEMM statistics block
  };

  Kind kind = Kind::Compute;
  std::int32_t slot = 0;  ///< reply slot (DmaIssue / DmaElide / Wait)
  double cycles = 0.0;    ///< Compute / Gemm: cycles to advance

  // Payloads by kind, in the side streams of ReplayTrace:
  //   DmaIssue / DmaSync   -> next entry of `dma_costs`
  //   DmaElide / SyncElide -> next entry of `elided_bytes`
  //   Gemm                 -> next entry of `gemm_extras`
};

/// GEMM statistics beyond the cycle advance (the timing interpreter's
/// memoized fast path).
struct ReplayGemmExtra {
  double comm_cycles = 0.0;
  std::int64_t flops = 0;
  obs::PipeCounters pipe;
};

/// A recorded run: the event list plus the recording run's own results, so
/// the replay loop can be checked bit-for-bit against what was recorded.
struct ReplayTrace {
  std::vector<ReplayEvent> events;
  std::vector<sim::DmaCost> dma_costs;      ///< DmaIssue + DmaSync, in order
  std::vector<std::int64_t> elided_bytes;   ///< DmaElide + SyncElide, in order
  std::vector<ReplayGemmExtra> gemm_extras; ///< Gemm, in order
  double cycles = 0.0;          ///< final clock of the recording run
  sim::CgStats stats;           ///< statistics of the recording run
  std::int64_t bytes_elided = 0;
  /// Set when the recording run finished normally in TimingOnly mode; a
  /// trace left incomplete (functional mode, a thrown sanitizer) must not
  /// be replayed.
  bool complete = false;
};

}  // namespace swatop::rt
