// Fast expression evaluation for the runtime's hot loops.
//
// ir::eval walks the shared expression tree and hash-looks-up every
// variable by name -- fine for passes, too slow for the timing interpreter
// that evaluates the same handful of expressions millions of times. This
// evaluator compiles each expression once (on first use, cached by node
// pointer) into a postfix program over integer slots and keeps variable
// values in a flat vector.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.hpp"

namespace swatop::rt {

class ExprEvaluator {
 public:
  /// Slot for a variable name (assigned on first use).
  int slot_of(const std::string& name);

  /// Bind a slot's current value.
  void set(int slot, std::int64_t v) {
    values_[static_cast<std::size_t>(slot)] = v;
  }

  /// Evaluate an expression against the current bindings.
  std::int64_t eval(const ir::Expr& e);

 private:
  enum class Op : std::uint8_t {
    PushConst,
    PushVar,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    Lt,
    Ge,
    Select,  ///< pops else, then, cond
  };
  struct Step {
    Op op;
    std::int64_t payload = 0;  ///< constant or slot id
  };
  using Code = std::vector<Step>;

  const Code& compile(const ir::Expr& e);
  void emit(const ir::Expr& e, Code& out);

  // The cache is keyed by node address; each entry pins the expression so
  // the allocator can never hand the same address to a different tree.
  struct Entry {
    ir::Expr pin;
    Code code;
  };
  std::unordered_map<const ir::ExprNode*, Entry> cache_;
  std::unordered_map<std::string, int> names_;
  std::vector<std::int64_t> values_;
};

}  // namespace swatop::rt
