#include "rt/expr_eval.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::rt {

namespace ir = swatop::ir;

int ExprEvaluator::slot_of(const std::string& name) {
  auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  const int slot = static_cast<int>(values_.size());
  values_.push_back(0);
  names_.emplace(name, slot);
  return slot;
}

void ExprEvaluator::emit(const ir::Expr& e, Code& out) {
  SWATOP_CHECK(e != nullptr) << "compile of null expression";
  switch (e->kind) {
    case ir::ExprKind::Const:
      out.push_back({Op::PushConst, e->value});
      return;
    case ir::ExprKind::Var:
      out.push_back({Op::PushVar, slot_of(e->name)});
      return;
    case ir::ExprKind::Select:
      emit(e->a, out);
      emit(e->b, out);
      emit(e->c, out);
      out.push_back({Op::Select, 0});
      return;
    default:
      break;
  }
  emit(e->a, out);
  emit(e->b, out);
  switch (e->kind) {
    case ir::ExprKind::Add: out.push_back({Op::Add, 0}); return;
    case ir::ExprKind::Sub: out.push_back({Op::Sub, 0}); return;
    case ir::ExprKind::Mul: out.push_back({Op::Mul, 0}); return;
    case ir::ExprKind::FloorDiv: out.push_back({Op::Div, 0}); return;
    case ir::ExprKind::Mod: out.push_back({Op::Mod, 0}); return;
    case ir::ExprKind::Min: out.push_back({Op::Min, 0}); return;
    case ir::ExprKind::Max: out.push_back({Op::Max, 0}); return;
    case ir::ExprKind::Lt: out.push_back({Op::Lt, 0}); return;
    case ir::ExprKind::Ge: out.push_back({Op::Ge, 0}); return;
    default:
      SWATOP_UNREACHABLE("bad expr kind in compile");
  }
}

const ExprEvaluator::Code& ExprEvaluator::compile(const ir::Expr& e) {
  auto it = cache_.find(e.get());
  if (it != cache_.end()) return it->second.code;
  Code code;
  emit(e, code);
  return cache_.emplace(e.get(), Entry{e, std::move(code)})
      .first->second.code;
}

std::int64_t ExprEvaluator::eval(const ir::Expr& e) {
  // Fast paths for the two most common shapes.
  if (e->kind == ir::ExprKind::Const) return e->value;
  const Code& code = compile(e);
  std::int64_t stack[32];
  int top = -1;
  for (const Step& s : code) {
    switch (s.op) {
      case Op::PushConst:
        stack[++top] = s.payload;
        break;
      case Op::PushVar:
        stack[++top] = values_[static_cast<std::size_t>(s.payload)];
        break;
      case Op::Add:
        --top;
        stack[top] += stack[top + 1];
        break;
      case Op::Sub:
        --top;
        stack[top] -= stack[top + 1];
        break;
      case Op::Mul:
        --top;
        stack[top] *= stack[top + 1];
        break;
      case Op::Div:
        --top;
        SWATOP_CHECK(stack[top + 1] != 0) << "division by zero";
        stack[top] /= stack[top + 1];
        break;
      case Op::Mod:
        --top;
        SWATOP_CHECK(stack[top + 1] != 0) << "mod by zero";
        stack[top] %= stack[top + 1];
        break;
      case Op::Min:
        --top;
        stack[top] = std::min(stack[top], stack[top + 1]);
        break;
      case Op::Max:
        --top;
        stack[top] = std::max(stack[top], stack[top + 1]);
        break;
      case Op::Lt:
        --top;
        stack[top] = stack[top] < stack[top + 1] ? 1 : 0;
        break;
      case Op::Ge:
        --top;
        stack[top] = stack[top] >= stack[top + 1] ? 1 : 0;
        break;
      case Op::Select:
        top -= 2;
        stack[top] = stack[top] != 0 ? stack[top + 1] : stack[top + 2];
        break;
    }
    SWATOP_CHECK(top >= 0 && top < 32) << "expression stack out of range";
  }
  SWATOP_CHECK(top == 0) << "malformed compiled expression";
  return stack[0];
}

}  // namespace swatop::rt
