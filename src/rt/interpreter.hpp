// The runtime: executes optimized IR on the simulated core group.
//
// Two modes mirror the two ways swATOP code is exercised. Functional mode
// really moves data between the arena and the 64 SPMs and runs the
// distributed GEMM primitive -- used by tests and examples to validate
// generated schedules against naive references. TimingOnly mode walks every
// loop iteration and prices every primitive without touching data -- it is
// this reproduction's stand-in for "running the generated code on the
// SW26010", and is what the black-box autotuner measures.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "dsl/dsl.hpp"
#include "ir/node.hpp"
#include "isa/kernel_cache.hpp"
#include "obs/profile.hpp"
#include "prim/gemm_primitive.hpp"
#include "rt/dma_expand.hpp"
#include "rt/replay_trace.hpp"
#include "sim/core_group.hpp"

namespace swatop::rt {

/// Operand tensors (by the *operator's* tensor names, e.g. "in"/"out")
/// the graph engine's inter-layer residency plan pinned on-chip for a
/// run: DMA against them never reaches DRAM or the DMA engine, so the
/// interpreter counts the transfer into RunResult::bytes_elided instead
/// of pricing it.
struct ResidentSet {
  std::unordered_set<std::string> tensors;
  bool empty() const { return tensors.empty(); }
};

struct RunResult {
  double cycles = 0.0;
  sim::CgStats stats;
  /// DRAM bytes not moved because the operand was SPM-resident.
  std::int64_t bytes_elided = 0;
  /// Observability snapshot of the run (counters + trace). Empty with
  /// `enabled == false` unless a recorder was attached to the core group.
  obs::Profile profile;

  /// Achieved GFLOPS given the operator's useful flops.
  double gflops(std::int64_t useful_flops, const sim::SimConfig& cfg) const {
    if (cycles <= 0.0) return 0.0;
    return static_cast<double>(useful_flops) / cycles * cfg.clock_ghz;
  }
};

class Interpreter {
 public:
  Interpreter(sim::CoreGroup& cg, sim::ExecMode mode);

  /// Execute `root` against the bound tensors. Resets the CG's clock,
  /// engine, statistics and SPM allocator (memory contents are preserved).
  RunResult run(const ir::StmtPtr& root, const dsl::BoundTensors& tensors);

  /// Pin operand tensors on-chip for subsequent run()s (null to clear);
  /// the pointer must outlive the runs. See ResidentSet.
  void set_resident(const ResidentSet* rs) { resident_ = rs; }

  /// Record the next run()'s booking events into `t` (null to stop).
  /// Only honored in TimingOnly mode -- functional GEMMs book through the
  /// primitive, which the trace cannot capture -- and only a trace whose
  /// run completed normally is marked `complete`. The pointer must outlive
  /// the run. See rt/replay_trace.hpp.
  void set_trace_sink(ReplayTrace* t) { trace_ = t; }

 private:
  void exec(const ir::StmtPtr& s);
  void exec_dma(const ir::Stmt& s);
  void exec_gemm(const ir::Stmt& s);
  void exec_zero(const ir::Stmt& s);
  /// Apply a fused epilogue to the C tile in SPM right before its put:
  /// prices the residual re-read, the (once per channel range) bias fetch
  /// and the vector ops, and in Functional mode rewrites the tile in place.
  void apply_epilogue(const ir::Stmt& s, const DmaGeometry& geo,
                      std::int64_t spm_at);
  std::int64_t spm_base(const std::string& buf) const;

  /// Per-slot bookkeeping beyond the completion time: which buffer the
  /// transfer fills/drains and (for the overlap sanitizer) the SPM range it
  /// owns while in flight. `buf` survives the wait so wait-on-empty errors
  /// can name the stream that last used the slot.
  struct SlotInfo {
    std::string buf;           ///< SPM buffer of the last transfer
    std::int64_t spm_lo = 0;   ///< in-flight SPM range [lo, hi)
    std::int64_t spm_hi = 0;
    bool writes_spm = false;   ///< get (writes SPM) vs put (reads SPM)
  };

  /// Human-readable current loop bindings ("i=2 j=0"), for diagnostics.
  std::string loop_context() const;

  /// Record a sanitizer trip and throw SanitizerError.
  [[noreturn]] void sanitizer_trip(std::int64_t obs::SanitizerCounters::*ctr,
                                   const std::string& what);

  /// Overlap sanitizer: trap if [lo, hi) intersects an in-flight transfer's
  /// SPM range and either side writes.
  void check_overlap(std::int64_t lo, std::int64_t hi, bool writes,
                     const std::string& who);

  /// Bounds sanitizer: the DMA's memory footprint must stay inside the
  /// owning tensor's arena allocation.
  void check_dma_bounds(const ir::Stmt& s, const DmaGeometry& geo);

  /// Poison sanitizer: trap if any float of [a, a+n) (uniform across CPEs)
  /// was never defined by a DMA, zero-fill or GEMM store.
  void check_defined(std::int64_t a, std::int64_t n, const std::string& buf,
                     const std::string& who);

  sim::CoreGroup& cg_;
  sim::ExecMode mode_;
  const isa::KernelCostDb& db_;
  ExprEvaluator eval_;
  const dsl::BoundTensors* tensors_ = nullptr;
  // Observability recorder of the core group, cached per run (nullptr when
  // observability is off -- every instrumentation site is one pointer test).
  obs::Recorder* obs_ = nullptr;
  std::unordered_map<std::string, std::int64_t> spm_off_;
  // Reply slots are small integers; completion times indexed directly.
  // A negative entry means "empty".
  std::vector<double> reply_done_;
  std::vector<SlotInfo> slot_info_;
  // Enclosing For bindings, outermost first (diagnostics only).
  std::vector<std::pair<std::string, std::int64_t>> loop_stack_;
  // Arena allocation extents keyed by base address, for the DMA bounds
  // sanitizer (snapshotted at run() start; empty when bounds are off).
  std::unordered_map<std::int64_t, std::int64_t> alloc_floats_;
  // Hot-path memoization: gemm cycle cost and per-CPE pipeline breakdown
  // per (variant, M, N, K) -- one lookup covers both -- and DMA cost per
  // transfer geometry.
  struct GemmCost {
    double cycles = 0.0;
    obs::PipeCounters pipe;
  };
  std::unordered_map<std::uint64_t, GemmCost> gemm_cost_memo_;
  DmaCostCache dma_cost_cache_;
  // Inter-layer residency for the current run (null: everything priced).
  const ResidentSet* resident_ = nullptr;
  // Replay-trace sink (null: recording off) and whether the current run
  // records into it (TimingOnly only).
  ReplayTrace* trace_ = nullptr;
  bool recording_ = false;
  std::int64_t bytes_elided_ = 0;
  // Epilogue bias vectors already fetched this run (keyed by first channel):
  // the tiny broadcast get is charged once per channel range, then the
  // vector stays in SPM across the output tiles that reuse it.
  std::unordered_set<std::int64_t> bias_charged_;
};

}  // namespace swatop::rt
