// The runtime: executes optimized IR on the simulated core group.
//
// Two modes mirror the two ways swATOP code is exercised. Functional mode
// really moves data between the arena and the 64 SPMs and runs the
// distributed GEMM primitive -- used by tests and examples to validate
// generated schedules against naive references. TimingOnly mode walks every
// loop iteration and prices every primitive without touching data -- it is
// this reproduction's stand-in for "running the generated code on the
// SW26010", and is what the black-box autotuner measures.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dsl/dsl.hpp"
#include "ir/node.hpp"
#include "isa/kernel_cache.hpp"
#include "obs/profile.hpp"
#include "prim/gemm_primitive.hpp"
#include "rt/dma_expand.hpp"
#include "sim/core_group.hpp"

namespace swatop::rt {

struct RunResult {
  double cycles = 0.0;
  sim::CgStats stats;
  /// Observability snapshot of the run (counters + trace). Empty with
  /// `enabled == false` unless a recorder was attached to the core group.
  obs::Profile profile;

  /// Achieved GFLOPS given the operator's useful flops.
  double gflops(std::int64_t useful_flops, const sim::SimConfig& cfg) const {
    if (cycles <= 0.0) return 0.0;
    return static_cast<double>(useful_flops) / cycles * cfg.clock_ghz;
  }
};

class Interpreter {
 public:
  Interpreter(sim::CoreGroup& cg, sim::ExecMode mode);

  /// Execute `root` against the bound tensors. Resets the CG's clock,
  /// engine, statistics and SPM allocator (memory contents are preserved).
  RunResult run(const ir::StmtPtr& root, const dsl::BoundTensors& tensors);

 private:
  void exec(const ir::StmtPtr& s);
  void exec_dma(const ir::Stmt& s);
  void exec_gemm(const ir::Stmt& s);
  void exec_zero(const ir::Stmt& s);
  std::int64_t spm_base(const std::string& buf) const;

  sim::CoreGroup& cg_;
  sim::ExecMode mode_;
  const isa::KernelCostDb& db_;
  ExprEvaluator eval_;
  const dsl::BoundTensors* tensors_ = nullptr;
  // Observability recorder of the core group, cached per run (nullptr when
  // observability is off -- every instrumentation site is one pointer test).
  obs::Recorder* obs_ = nullptr;
  std::unordered_map<std::string, std::int64_t> spm_off_;
  // Reply slots are small integers; completion times indexed directly.
  // A negative entry means "empty".
  std::vector<double> reply_done_;
  // Hot-path memoization: gemm cost per (variant, M, N, K) and DMA cost
  // per transfer geometry.
  std::unordered_map<std::uint64_t, double> gemm_cost_memo_;
  std::unordered_map<std::uint64_t, obs::PipeCounters> gemm_pipe_memo_;
  DmaCostCache dma_cost_cache_;
};

}  // namespace swatop::rt
