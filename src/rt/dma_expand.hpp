// Expansion of an IR DMA node into per-CPE descriptors (the DMA_CG ->
// DMA_CPE derivation of Sec. 4.5.1), shared by the runtime (pricing +
// functional copy) and the static cost model (pricing only).
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "ir/node.hpp"
#include "rt/expr_eval.hpp"
#include "sim/core_group.hpp"

namespace swatop::rt {

/// The evaluated geometry of one DMA node under a loop environment.
struct DmaGeometry {
  sim::MainMemory::Addr base = 0;  ///< tensor address + evaluated view base
  std::int64_t rows = 0, cols = 0;      ///< valid region
  std::int64_t rows_p = 0, cols_p = 0;  ///< tile grid
  std::int64_t tr = 0, tc = 0;          ///< per-CPE tile dims
};

/// Evaluate the node's expressions; checks validity (region within grid,
/// grid divisible by the mesh).
DmaGeometry evaluate_dma(const ir::DmaAttrs& d, const ir::Env& env,
                         sim::MainMemory::Addr tensor_base,
                         const sim::SimConfig& cfg);

/// Same, using the runtime's compiled-expression evaluator.
DmaGeometry evaluate_dma(const ir::DmaAttrs& d, ExprEvaluator& ev,
                         sim::MainMemory::Addr tensor_base,
                         const sim::SimConfig& cfg);

/// Per-CPE block indices for mesh position (rid, cid).
void block_of(const ir::DmaAttrs& d, int rid, int cid, std::int64_t* br,
              std::int64_t* bc);

/// Build the per-CPE descriptor list used for pricing.
std::vector<sim::DmaCpeDesc> expand_dma(const ir::DmaAttrs& d,
                                        const DmaGeometry& g,
                                        std::int64_t spm_at,
                                        const sim::SimConfig& cfg);

/// Memoized DMA pricing: the cost of a transfer only depends on its
/// geometry and the base address's alignment within a DRAM transaction, so
/// hot loops (the timing interpreter, the static cost model) reuse it.
class DmaCostCache {
 public:
  const sim::DmaCost& get(const ir::DmaAttrs& d, const DmaGeometry& g,
                          const sim::DmaEngine& engine,
                          const sim::SimConfig& cfg);

 private:
  struct KeyHash {
    std::size_t operator()(const std::array<std::int64_t, 10>& k) const {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a
      for (std::int64_t v : k) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::array<std::int64_t, 10>, sim::DmaCost, KeyHash>
      memo_;
};

}  // namespace swatop::rt
