#include "rt/dma_expand.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace swatop::rt {

namespace ir = swatop::ir;

namespace {

DmaGeometry finish_geometry(DmaGeometry g, const sim::SimConfig& cfg) {
  SWATOP_CHECK(g.rows >= 0 && g.cols >= 0 && g.rows <= g.rows_p &&
               g.cols <= g.cols_p)
      << "DMA valid region " << g.rows << "x" << g.cols << " exceeds tile "
      << g.rows_p << "x" << g.cols_p;
  SWATOP_CHECK(g.rows_p % cfg.mesh_rows == 0 &&
               g.cols_p % cfg.mesh_cols == 0)
      << "DMA tile grid " << g.rows_p << "x" << g.cols_p
      << " not divisible by the mesh";
  g.tr = g.rows_p / cfg.mesh_rows;
  g.tc = g.cols_p / cfg.mesh_cols;
  return g;
}

}  // namespace

DmaGeometry evaluate_dma(const ir::DmaAttrs& d, const ir::Env& env,
                         sim::MainMemory::Addr tensor_base,
                         const sim::SimConfig& cfg) {
  DmaGeometry g;
  g.base = tensor_base + ir::eval(d.view.base, env);
  g.rows = ir::eval(d.view.rows, env);
  g.cols = ir::eval(d.view.cols, env);
  g.rows_p = ir::eval(d.rows_p, env);
  g.cols_p = ir::eval(d.cols_p, env);
  return finish_geometry(g, cfg);
}

DmaGeometry evaluate_dma(const ir::DmaAttrs& d, ExprEvaluator& ev,
                         sim::MainMemory::Addr tensor_base,
                         const sim::SimConfig& cfg) {
  DmaGeometry g;
  g.base = tensor_base + ev.eval(d.view.base);
  g.rows = ev.eval(d.view.rows);
  g.cols = ev.eval(d.view.cols);
  g.rows_p = ev.eval(d.rows_p);
  g.cols_p = ev.eval(d.cols_p);
  return finish_geometry(g, cfg);
}

void block_of(const ir::DmaAttrs& d, int rid, int cid, std::int64_t* br,
              std::int64_t* bc) {
  if (!d.scatter) {
    *br = 0;
    *bc = 0;
    return;
  }
  *br = d.rows_to_rid ? rid : cid;
  *bc = d.rows_to_rid ? cid : rid;
}

const sim::DmaCost& DmaCostCache::get(const ir::DmaAttrs& d,
                                      const DmaGeometry& g,
                                      const sim::DmaEngine& engine,
                                      const sim::SimConfig& cfg) {
  const std::int64_t align_floats =
      static_cast<std::int64_t>(cfg.dram_transaction_bytes / sizeof(float));
  const std::array<std::int64_t, 10> key = {
      g.base % align_floats,
      g.rows,
      g.cols,
      g.rows_p,
      g.cols_p,
      d.view.stride_r,
      d.view.stride_c,
      d.scatter ? 1 : 0,
      d.rows_to_rid ? 1 : 0,
      d.dir == ir::Direction::MemToSpm ? 0 : 1};
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  const auto descs = expand_dma(d, g, 0, cfg);
  return memo_.emplace(key, engine.cost(descs)).first->second;
}

std::vector<sim::DmaCpeDesc> expand_dma(const ir::DmaAttrs& d,
                                        const DmaGeometry& g,
                                        std::int64_t spm_at,
                                        const sim::SimConfig& cfg) {
  std::vector<sim::DmaCpeDesc> descs;
  descs.reserve(static_cast<std::size_t>(cfg.num_cpes()));
  const sim::DmaDir dir = d.dir == ir::Direction::MemToSpm
                              ? sim::DmaDir::MemToSpm
                              : sim::DmaDir::SpmToMem;
  for (int rid = 0; rid < cfg.mesh_rows; ++rid) {
    for (int cid = 0; cid < cfg.mesh_cols; ++cid) {
      std::int64_t br, bc;
      block_of(d, rid, cid, &br, &bc);
      const std::int64_t vr =
          std::clamp<std::int64_t>(g.rows - br * g.tr, 0, g.tr);
      const std::int64_t vc =
          std::clamp<std::int64_t>(g.cols - bc * g.tc, 0, g.tc);
      sim::DmaCpeDesc desc;
      desc.dir = dir;
      desc.spm_addr = spm_at;
      if (vr > 0 && vc > 0) {
        desc.mem_base =
            g.base + br * g.tr * d.view.stride_r + bc * g.tc * d.view.stride_c;
        if (d.view.stride_r == 1) {
          desc.block = vr;
          desc.stride = d.view.stride_c - vr;
        } else {
          // Element-granular gather/scatter: every element opens its own
          // transaction window.
          desc.block = 1;
          desc.stride = d.view.stride_r - 1;
        }
        desc.total = vr * vc;
      }
      descs.push_back(desc);
    }
  }
  return descs;
}

}  // namespace swatop::rt
