// Tensor binding: allocate an operator's main-memory tensors in a core
// group's arena.
#pragma once

#include "dsl/dsl.hpp"
#include "sim/core_group.hpp"

namespace swatop::rt {

/// Allocate every tensor the operator declares; returns name -> address.
dsl::BoundTensors bind_tensors(sim::CoreGroup& cg, const dsl::OperatorDef& op);

}  // namespace swatop::rt
