// The serving front-end: request queue -> dynamic batcher -> fleet
// scheduler -> SLO-aware admission control, driven as a deterministic
// discrete-event simulation in simulated microseconds.
//
// Dataflow per event step:
//   1. *Admission*: arrivals up to `now` are admitted into the batcher or
//      rejected outright when even an idle-fleet execution of the request
//      could not meet its SLO (deadline infeasible on arrival).
//   2. *Dispatch*: while a chip is idle and the batcher has a ready
//      network, the next sub-batch is priced via the cost provider
//      (tune-on-first-miss through the schedule cache) and placed on the
//      earliest-free chip. Before committing, admission control sheds any
//      request in the candidate batch whose deadline can no longer be met
//      (`now + exec > deadline`) -- for the final slice of a request this
//      check is exact, so every *completed* request met its SLO when
//      admission is on. Shed and rejected requests are counted and
//      reported, never silently dropped.
//   3. *Advance*: simulated time jumps to the next arrival, batcher
//      timeout, or chip completion; queue depth is integrated over the
//      interval.
//
// Determinism contract: given one trace (serve/traffic.hpp, fixed seed)
// and one cost provider, the whole report -- every latency, every shed
// decision, every byte of the JSON -- is identical run to run and at any
// tuner worker-thread count (the engine's argmin is thread-invariant, so
// the priced cycles are too). Nothing on this path reads a wall clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "serve/batcher.hpp"
#include "serve/cost.hpp"
#include "serve/fleet.hpp"
#include "serve/request.hpp"
#include "serve/telemetry.hpp"

namespace swatop::serve {

struct AdmissionConfig {
  /// Off: every request is admitted and runs to completion, however late
  /// (the no-admission ablation; p99 is unbounded under overload).
  bool enabled = true;
  /// Deadline scale used by the admission/shed predictions: shed when the
  /// predicted finish exceeds arrival + headroom * slo. 1.0 = the SLO
  /// itself; < 1 sheds earlier (reserves slack), > 1 tolerates lateness.
  double headroom = 1.0;
};

struct ServerConfig {
  BatcherConfig batcher;
  FleetConfig fleet;
  AdmissionConfig admission;
  TelemetryConfig telemetry;  ///< flight recorder (off by default)
};

/// Per-network slice of the report.
struct NetServingStats {
  std::string net;
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t images_offered = 0;
  std::int64_t images_completed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double slo_ms = 0.0;  ///< the SLO its requests carried (max over trace)
  std::int64_t slo_violations = 0;
};

struct ServingReport {
  // Offered load.
  std::int64_t offered = 0;
  std::int64_t images_offered = 0;
  double first_arrival_us = 0.0;
  double last_arrival_us = 0.0;

  // Outcomes (offered = completed + rejected + shed, always).
  std::int64_t completed = 0;
  std::int64_t rejected = 0;   ///< admission refused on arrival
  std::int64_t shed = 0;       ///< dropped later (deadline unreachable)
  std::int64_t images_completed = 0;
  double shed_rate = 0.0;      ///< (rejected + shed) / offered

  // Latency of completed requests, milliseconds.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::int64_t slo_violations = 0;  ///< completed but late (admission off)

  // Sustained rates over the makespan (first arrival -> last finish).
  double makespan_s = 0.0;
  double throughput_rps = 0.0;
  double throughput_ips = 0.0;

  // Queueing and fleet occupancy.
  double mean_queue_images = 0.0;  ///< time-weighted over the makespan
  std::int64_t max_queue_images = 0;
  double utilization = 0.0;        ///< busy / (chips * makespan)
  std::int64_t batches = 0;
  double mean_batch_images = 0.0;
  double wasted_ms = 0.0;  ///< chip-time spent on parts of later-shed requests

  // Cost-provider traffic (profiles = timing-only engine runs).
  CostProviderStats cost;

  std::vector<NetServingStats> per_net;
  std::vector<Fleet::ChipStats> chips;
  std::vector<RequestRecord> records;  ///< per-request ledger, id order

  /// Windowed flight-recorder timeline (empty stub unless
  /// ServerConfig::telemetry.enabled). Window counter sums are checked
  /// against the totals above before the report is returned.
  TelemetryResult telemetry;

  /// Human-readable multi-line summary.
  std::string text() const;
  /// Machine-readable JSON object (stable field order, %.17g doubles:
  /// byte-identical for identical runs). `records` are not included.
  std::string json() const;
  /// The telemetry timeline as JSONL, one window per line (empty when
  /// telemetry was off). Byte-identical for identical runs.
  std::string timeline_jsonl() const { return telemetry.jsonl(); }
};

class Server {
 public:
  /// The recorder is optional; when given, serving counters and pid-2
  /// trace spans (per-chip sub-batches, admission instants) are emitted.
  Server(ServerConfig cfg, CostProvider& cost, obs::Recorder* rec = nullptr);

  const ServerConfig& config() const { return cfg_; }

  /// Serve one arrival trace to completion. The trace must be sorted by
  /// arrival time with unique ids; throws swatop::CheckError otherwise.
  ServingReport run(const std::vector<Request>& trace);

 private:
  ServerConfig cfg_;
  CostProvider& cost_;
  obs::Recorder* rec_;
};

}  // namespace swatop::serve
