// The unit of work of the serving front-end: one inference request for a
// named network at a requested image count, stamped with its simulated
// arrival time and the latency SLO its client expects.
//
// Serving time is *simulated* microseconds: chip execution times come from
// the cycle simulator (cycles / clock), arrival times from the synthetic
// traffic generators (serve/traffic.hpp). Nothing on the serving path reads
// a wall clock, which is what makes a whole serving run byte-identical for
// a fixed seed (see DESIGN §6, determinism contract).
#pragma once

#include <cstdint>
#include <string>

namespace swatop::serve {

struct Request {
  std::int64_t id = 0;
  std::string net;           ///< graph::build_net name ("vgg16", ...)
  std::int64_t images = 1;   ///< requested batch size
  double arrival_us = 0.0;   ///< simulated arrival time
  double slo_us = 0.0;       ///< latency SLO; deadline = arrival + slo

  double deadline_us() const { return arrival_us + slo_us; }
};

/// What happened to a request. Every offered request ends in exactly one of
/// these states -- the server never drops work silently.
enum class Outcome : std::uint8_t {
  Completed,  ///< all images served; latency = finish - arrival
  Rejected,   ///< admission control refused it on arrival (SLO infeasible)
  Shed,       ///< dropped later, when its deadline became unreachable
};

const char* outcome_name(Outcome o);

/// Per-request ledger entry the server keeps for reporting.
struct RequestRecord {
  Request req;
  Outcome outcome = Outcome::Completed;
  double finish_us = 0.0;   ///< completion (or shed/reject) time
  double latency_us = 0.0;  ///< finish - arrival for completed requests
  /// Chip-microseconds spent on parts of a request that was later shed
  /// (split requests only); reported as wasted work, never hidden.
  double wasted_us = 0.0;
};

inline const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::Rejected: return "rejected";
    case Outcome::Shed: return "shed";
  }
  return "?";
}

}  // namespace swatop::serve
