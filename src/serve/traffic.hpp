// Synthetic traffic generators for the serving simulator: Poisson and
// bursty arrival processes over a weighted mix of networks and requested
// batch sizes.
//
// Determinism contract: the generator uses its own splitmix64/xorshift
// stream and an explicit u64 -> double mapping, never the standard
// library's distributions (whose output is implementation-defined), so one
// (config, seed) pair produces the byte-identical trace on every platform
// and toolchain. The trace is the sole source of randomness in a serving
// run -- everything downstream (batcher, fleet, admission) is
// deterministic given the trace and the simulated chip costs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace swatop::serve {

/// Deterministic 64-bit generator (xorshift64* seeded through splitmix64).
/// Public so tests and benches can reuse the exact stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  std::uint64_t next_u64();
  /// Uniform in [0, 1) with 53 random bits (exactly representable).
  double next_double();
  /// Exponential with the given rate (events per unit time); rate > 0.
  double next_exponential(double rate);
  /// Index into a non-empty weight vector, proportional to the weights.
  std::size_t next_weighted(const std::vector<double>& weights);

 private:
  std::uint64_t s_;
};

/// One network's share of the traffic mix.
struct NetMix {
  std::string net;     ///< graph::build_net name
  double weight = 1.0; ///< relative request share
  double slo_ms = 50.0;///< per-net latency SLO stamped on its requests
};

enum class ArrivalPattern : std::uint8_t {
  Poisson,  ///< exponential inter-arrivals at `rate_rps`
  /// Square-wave modulated Poisson: each `burst_period_s` starts with a
  /// burst window (`burst_fraction` of the period) during which the rate is
  /// `burst_factor * rate_rps`; outside it the rate is `rate_rps`. Mean
  /// offered load is rate_rps * (1 + (burst_factor - 1) * burst_fraction).
  Bursty,
};

const char* arrival_pattern_name(ArrivalPattern p);

struct TrafficConfig {
  std::uint64_t seed = 1;
  double duration_s = 5.0;  ///< arrival window; no arrivals after it
  double rate_rps = 50.0;   ///< base request arrival rate (requests/s)
  ArrivalPattern pattern = ArrivalPattern::Poisson;
  double burst_factor = 6.0;
  double burst_fraction = 0.25;
  double burst_period_s = 1.0;
  /// Networks in the mix; must be non-empty.
  std::vector<NetMix> mix{{"resnet", 1.0, 50.0}};
  /// Requested batch sizes and their weights (parallel vectors; sizes
  /// default to single-image requests when empty).
  std::vector<std::int64_t> sizes{1};
  std::vector<double> size_weights{1.0};
};

/// Generate the arrival trace: requests sorted by arrival time with ids in
/// arrival order. Throws swatop::CheckError on an invalid config (empty
/// mix, non-positive rate/duration, mismatched size weights).
std::vector<Request> generate_trace(const TrafficConfig& cfg);

}  // namespace swatop::serve
