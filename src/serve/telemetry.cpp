#include "serve/telemetry.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace swatop::serve {

namespace {

/// splitmix64 finalizer (same constants as traffic.cpp's seeding) -- a
/// high-quality 64-bit mix, so consecutive request ids sample like
/// independent coin flips.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Names of ServeTelemetry::Channel, in enum order.
const char* const kChannelNames[] = {
    "arrivals", "admitted",          "rejected", "shed",
    "completed", "images_completed", "batches",  "images_dispatched",
    "busy_us",
};

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_kv(std::string& out, const char* key, std::int64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_net(std::string& out, const WindowNetStats& n) {
  out += "{\"net\":\"" + n.net + "\"";
  append_kv(out, "offered", n.offered);
  append_kv(out, "completed", n.completed);
  append_kv(out, "rejected", n.rejected);
  append_kv(out, "shed", n.shed);
  append_kv(out, "late", n.late);
  append_kv(out, "p50_ms", n.p50_ms);
  append_kv(out, "p99_ms", n.p99_ms);
  append_kv(out, "burn", n.burn);
  out += "}";
}

void append_window(std::string& out, const TelemetryWindow& w,
                   const std::vector<const BurnAlert*>& alerts) {
  out += "{\"window\":" + std::to_string(w.index);
  append_kv(out, "start_us", w.start_us);
  append_kv(out, "end_us", w.end_us);
  append_kv(out, "arrivals", w.arrivals);
  append_kv(out, "admitted", w.admitted);
  append_kv(out, "rejected", w.rejected);
  append_kv(out, "shed", w.shed);
  append_kv(out, "completed", w.completed);
  append_kv(out, "images_completed", w.images_completed);
  append_kv(out, "batches", w.batches);
  append_kv(out, "images_dispatched", w.images_dispatched);
  append_kv(out, "busy_us", w.busy_us);
  append_kv(out, "queue_images", w.queue_images);
  append_kv(out, "queue_requests", w.queue_requests);
  append_kv(out, "inflight_requests", w.inflight_requests);
  append_kv(out, "busy_chips", w.busy_chips);
  if (!w.chip_busy.empty()) {
    out += ",\"chip_busy\":[";
    for (std::size_t i = 0; i < w.chip_busy.size(); ++i) {
      if (i) out += ",";
      append_num(out, w.chip_busy[i]);
    }
    out += "]";
  }
  append_kv(out, "lat_count", w.lat_count);
  append_kv(out, "p50_ms", w.p50_ms);
  append_kv(out, "p99_ms", w.p99_ms);
  out += ",\"nets\":[";
  for (std::size_t i = 0; i < w.nets.size(); ++i) {
    if (i) out += ",";
    append_net(out, w.nets[i]);
  }
  out += "]";
  if (!alerts.empty()) {
    out += ",\"alerts\":[";
    for (std::size_t i = 0; i < alerts.size(); ++i) {
      if (i) out += ",";
      out += "{\"net\":\"" + alerts[i]->net + "\"";
      append_kv(out, "burn", alerts[i]->burn);
      out += "}";
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

bool sample_request(std::int64_t id, double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(id));
  // Top 53 bits -> [0, 1), the same uniform construction as serve::Rng.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < fraction;
}

ServeTelemetry::ServeTelemetry(const TelemetryConfig& cfg,
                               std::vector<std::string> nets, int chips,
                               GaugeSampler sampler)
    : cfg_(cfg),
      nets_(std::move(nets)),
      chips_(chips),
      ts_(cfg.window_us,
          std::vector<std::string>(kChannelNames,
                                   kChannelNames + kNumChannels),
          [chips] {
            std::vector<std::string> g = {"queue_images", "queue_requests",
                                          "inflight_requests", "busy_chips"};
            const int n = chips < kMaxChipGauges ? chips : kMaxChipGauges;
            for (int i = 0; i < n; ++i)
              g.push_back("chip_busy_" + std::to_string(i));
            return g;
          }(),
          std::move(sampler)),
      cur_nets_(nets_.size()) {
  SWATOP_CHECK(cfg_.window_us > 0.0)
      << "telemetry window " << cfg_.window_us << " us";
  SWATOP_CHECK(cfg_.slo_budget > 0.0)
      << "slo error budget " << cfg_.slo_budget;
  // Rotate the per-net slot ring in lockstep with the TimeSeries windows:
  // the slots accumulated for the just-closed window move to the archive
  // and the next window's buffered slots (if any) become current.
  ts_.set_on_close([this](const obs::TimeSeries::Window&) {
    archive_.push_back(std::move(cur_nets_));
    if (future_nets_.empty()) {
      cur_nets_ = std::vector<NetWindow>(nets_.size());
    } else {
      cur_nets_ = std::move(future_nets_.front());
      future_nets_.pop_front();
    }
    ++cur_win_;
  });
}

ServeTelemetry::NetWindow& ServeTelemetry::net_at_future(std::int64_t idx,
                                                         std::size_t net) {
  SWATOP_CHECK(idx > cur_win_)
      << "net slot for window " << idx << " precedes the open window "
      << cur_win_;
  const std::size_t d = static_cast<std::size_t>(idx - cur_win_ - 1);
  while (future_nets_.size() <= d)
    future_nets_.emplace_back(nets_.size());
  return future_nets_[d][net];
}

void ServeTelemetry::finish(double end_us) { ts_.finish(end_us); }

TelemetryResult ServeTelemetry::result() const {
  SWATOP_CHECK(ts_.finished()) << "telemetry result() before finish()";
  SWATOP_CHECK(archive_.size() == ts_.windows().size())
      << "net-slot archive (" << archive_.size() << ") out of step with "
      << ts_.windows().size() << " windows";
  TelemetryResult r;
  r.enabled = true;
  r.window_us = cfg_.window_us;
  r.sampled_requests = sampled_;

  std::vector<double> prev_burn(nets_.size(), 0.0);
  std::vector<obs::LatencyHistogram> net_lat(nets_.size());
  std::vector<std::int64_t> net_completed(nets_.size(), 0);
  obs::LatencyHistogram wlat;  // scratch, cleared per window
  r.windows.reserve(ts_.windows().size());

  for (std::size_t wi = 0; wi < ts_.windows().size(); ++wi) {
    const obs::TimeSeries::Window& src = ts_.windows()[wi];
    TelemetryWindow w;
    w.index = src.index;
    w.start_us = src.start_us;
    w.end_us = src.end_us;
    w.arrivals = static_cast<std::int64_t>(src.counters[kArrivals]);
    w.admitted = static_cast<std::int64_t>(src.counters[kAdmitted]);
    w.rejected = static_cast<std::int64_t>(src.counters[kRejected]);
    w.shed = static_cast<std::int64_t>(src.counters[kShed]);
    w.completed = static_cast<std::int64_t>(src.counters[kCompleted]);
    w.images_completed =
        static_cast<std::int64_t>(src.counters[kImagesCompleted]);
    w.batches = static_cast<std::int64_t>(src.counters[kBatches]);
    w.images_dispatched =
        static_cast<std::int64_t>(src.counters[kImagesDispatched]);
    w.busy_us = src.counters[kBusyUs];
    w.queue_images = src.gauges[0];
    w.queue_requests = src.gauges[1];
    w.inflight_requests = src.gauges[2];
    w.busy_chips = src.gauges[3];
    w.chip_busy.assign(src.gauges.begin() + 4, src.gauges.end());

    // The window's overall latency histogram is the merge of its per-net
    // histograms (the mergeability contract doing hot-path work: one
    // histogram add per completion in the loop, the union built here).
    const std::vector<NetWindow>& slots = archive_[wi];
    wlat.clear();
    for (const NetWindow& nw : slots) wlat.merge(nw.lat);
    if (!wlat.empty()) {
      w.lat_count = wlat.count();
      w.p50_ms = wlat.quantile(0.50);
      w.p99_ms = wlat.quantile(0.99);
    }

    // Per-net slices of this window, in net-universe (sorted) order; only
    // nets with activity are emitted.
    std::vector<double> burn_now(nets_.size(), 0.0);
    for (std::size_t net = 0; net < slots.size(); ++net) {
      const NetWindow& nw = slots[net];
      if (nw.offered + nw.completed + nw.rejected + nw.shed == 0) continue;
      WindowNetStats s;
      s.net = nets_[net];
      s.offered = nw.offered;
      s.completed = nw.completed;
      s.rejected = nw.rejected;
      s.shed = nw.shed;
      s.late = nw.late;
      if (!nw.lat.empty()) {
        s.p50_ms = nw.lat.quantile(0.50);
        s.p99_ms = nw.lat.quantile(0.99);
      }
      if (nw.offered > 0) {
        const double err =
            static_cast<double>(nw.rejected + nw.shed + nw.late) /
            static_cast<double>(nw.offered);
        s.burn = err / cfg_.slo_budget;
      }
      burn_now[net] = s.burn;
      net_lat[net].merge(nw.lat);
      net_completed[net] += nw.completed;
      w.nets.push_back(std::move(s));
    }

    // Rising-edge burn alerts, stamped at the window close.
    for (std::size_t net = 0; net < nets_.size(); ++net) {
      if (prev_burn[net] < cfg_.burn_threshold &&
          burn_now[net] >= cfg_.burn_threshold) {
        BurnAlert a;
        a.net = nets_[net];
        a.window = w.index;
        a.t_us = w.end_us;
        a.burn = burn_now[net];
        r.alerts.push_back(std::move(a));
      }
      prev_burn[net] = burn_now[net];
    }

    r.windows.push_back(std::move(w));
  }

  for (std::size_t net = 0; net < nets_.size(); ++net) {
    if (net_completed[net] == 0) continue;
    NetStreamingStats s;
    s.net = nets_[net];
    s.completed = net_completed[net];
    s.p50_ms = net_lat[net].quantile(0.50);
    s.p99_ms = net_lat[net].quantile(0.99);
    r.per_net.push_back(std::move(s));
  }
  return r;
}

std::string TelemetryResult::jsonl() const {
  std::string out;
  std::size_t next_alert = 0;
  for (const TelemetryWindow& w : windows) {
    std::vector<const BurnAlert*> here;
    while (next_alert < alerts.size() &&
           alerts[next_alert].window == w.index)
      here.push_back(&alerts[next_alert++]);
    append_window(out, w, here);
    out += "\n";
  }
  return out;
}

std::string TelemetryResult::json() const {
  std::string out = "{\"enabled\":";
  out += enabled ? "true" : "false";
  append_kv(out, "window_us", window_us);
  append_kv(out, "windows_n", static_cast<std::int64_t>(windows.size()));
  append_kv(out, "sampled_requests", sampled_requests);
  out += ",\"windows\":[";
  std::size_t next_alert = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i) out += ",";
    std::vector<const BurnAlert*> here;
    while (next_alert < alerts.size() &&
           alerts[next_alert].window == windows[i].index)
      here.push_back(&alerts[next_alert++]);
    append_window(out, windows[i], here);
  }
  out += "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    if (i) out += ",";
    out += "{\"net\":\"" + alerts[i].net + "\"";
    append_kv(out, "window", alerts[i].window);
    append_kv(out, "t_us", alerts[i].t_us);
    append_kv(out, "burn", alerts[i].burn);
    out += "}";
  }
  out += "],\"per_net\":[";
  for (std::size_t i = 0; i < per_net.size(); ++i) {
    if (i) out += ",";
    out += "{\"net\":\"" + per_net[i].net + "\"";
    append_kv(out, "completed", per_net[i].completed);
    append_kv(out, "p50_ms", per_net[i].p50_ms);
    append_kv(out, "p99_ms", per_net[i].p99_ms);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace swatop::serve
