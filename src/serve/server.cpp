#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/check.hpp"
#include "obs/histogram.hpp"

namespace swatop::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Completed-late slack: simulated times are sums of exact chip execution
/// times, so anything beyond sub-microsecond drift is a real violation.
constexpr double kLateEpsUs = 1e-6;

/// Greedy ladder decomposition of a request: the part sizes the batcher
/// would split `images` into if the request were alone in the queue.
std::vector<std::int64_t> ladder_parts(std::int64_t images,
                                       const BatcherConfig& bc) {
  std::vector<std::int64_t> parts;
  std::int64_t left = images;
  while (left > 0) {
    std::int64_t size = bc.ladder.front();
    for (std::int64_t s : bc.ladder)
      if (s <= std::min(left, bc.max_batch)) size = s;
    parts.push_back(size);
    left -= size;
  }
  return parts;
}

/// Exact ceil-rank percentile of sorted microsecond samples, in ms. The
/// rank rule lives in obs::exact_percentile, shared with the streaming
/// histogram's error-bound contract (the report is the exact oracle the
/// per-window quantiles are validated against).
double percentile_ms(const std::vector<double>& sorted_us, double q) {
  return obs::exact_percentile(sorted_us, q) / 1e3;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Shortest-round-trip double formatting (%.17g) so two identical runs
/// serialize byte-identically.
void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, double v, bool comma) {
  if (comma) out += ',';
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_kv(std::string& out, const char* key, std::int64_t v,
               bool comma) {
  if (comma) out += ',';
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

Server::Server(ServerConfig cfg, CostProvider& cost, obs::Recorder* rec)
    : cfg_(std::move(cfg)), cost_(cost), rec_(rec) {
  SWATOP_CHECK(cfg_.admission.headroom > 0.0)
      << "admission headroom " << cfg_.admission.headroom;
}

ServingReport Server::run(const std::vector<Request>& trace) {
  DynamicBatcher batcher(cfg_.batcher);
  Fleet fleet(cfg_.fleet);
  const BatcherConfig& bc = batcher.config();

  ServingReport rep;
  rep.records.resize(trace.size());

  // Per-request in-flight state, parallel to `trace` / `rep.records`.
  struct Inflight {
    double max_finish_us = 0.0;   ///< latest finish among dispatched parts
    double dispatched_us = 0.0;   ///< chip-time share of dispatched parts
    bool done = false;
    bool sampled = false;  ///< emits lifecycle flow spans into the trace
    bool started = false;  ///< at least one slice dispatched
  };
  std::vector<Inflight> state(trace.size());
  std::unordered_map<std::int64_t, std::size_t> index;
  index.reserve(trace.size());
  // Sorted net universe for the telemetry's per-net windows.
  std::map<std::string, std::size_t> net_index;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& r = trace[i];
    SWATOP_CHECK(!r.net.empty() && r.images >= 1)
        << "malformed request " << r.id;
    SWATOP_CHECK(i == 0 || trace[i - 1].arrival_us <= r.arrival_us)
        << "trace not sorted by arrival at request " << r.id;
    SWATOP_CHECK(index.emplace(r.id, i).second)
        << "duplicate request id " << r.id;
    rep.records[i].req = r;
    rep.images_offered += r.images;
    net_index.emplace(r.net, 0);
  }
  std::vector<std::string> net_names;
  net_names.reserve(net_index.size());
  for (auto& [name, idx] : net_index) {
    idx = net_names.size();
    net_names.push_back(name);
  }
  // Net index per request, resolved once -- the telemetry hooks fire
  // several times per request and must not pay a string-map lookup each.
  std::vector<std::size_t> net_of;
  if (cfg_.telemetry.enabled) {
    net_of.resize(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
      net_of[i] = net_index.at(trace[i].net);
  }
  rep.offered = static_cast<std::int64_t>(trace.size());
  if (!trace.empty()) {
    rep.first_arrival_us = trace.front().arrival_us;
    rep.last_arrival_us = trace.back().arrival_us;
  }

  const bool tracing = rec_ != nullptr && rec_->tracing();
  double now = 0.0;
  double last_finish = 0.0;
  double depth_integral = 0.0;
  std::size_t next = 0;  // next trace index to admit
  std::int64_t live_requests = 0;  // admitted, not yet finalized

  // The flight recorder: windowed counters/gauges plus per-window latency
  // histograms. Gauges read the batcher/fleet state at each window close
  // (exact between discrete events).
  std::optional<ServeTelemetry> telem;
  if (cfg_.telemetry.enabled) {
    telem.emplace(cfg_.telemetry, net_names, fleet.chips(),
                  [&](double t, std::vector<double>& g) {
                    g[0] = static_cast<double>(batcher.queued_images());
                    g[1] = static_cast<double>(batcher.queued_requests());
                    g[2] = static_cast<double>(live_requests);
                    g[3] = static_cast<double>(fleet.busy_count(t));
                    const int n =
                        std::min(fleet.chips(),
                                 ServeTelemetry::kMaxChipGauges);
                    for (int c = 0; c < n; ++c)
                      g[4 + static_cast<std::size_t>(c)] =
                          fleet.busy_at(c, t) ? 1.0 : 0.0;
                  });
  }
  const double sample_frac = cfg_.telemetry.trace_sample;

  // Request-lifecycle spans land on one of the request tracks; dur-0
  // spans give flow starts/ends a slice to bind to.
  auto request_track = [](std::int64_t id) {
    return obs::Track::kServeRequest0 +
           static_cast<int>(static_cast<std::uint64_t>(id) %
                            obs::Track::kServeRequestTracks);
  };
  auto request_span = [&](const Request& r, const char* what, double ts,
                          double dur) {
    obs::TraceEvent ev;
    ev.name = std::string(what) + ":" + r.net;
    ev.cat = obs::Category::Serve;
    ev.pid = 2;
    ev.tid = request_track(r.id);
    ev.ts = ts;
    ev.dur = dur;
    ev.arg_name[0] = "request";
    ev.arg[0] = r.id;
    ev.arg_name[1] = "images";
    ev.arg[1] = r.images;
    rec_->trace_event(std::move(ev));
  };
  auto request_flow = [&](const Request& r, char phase, int tid, double ts) {
    obs::TraceEvent ev;
    ev.name = "req:" + std::to_string(r.id);
    ev.cat = obs::Category::Serve;
    ev.pid = 2;
    ev.tid = tid;
    ev.ts = ts;
    ev.flow = phase;
    ev.flow_id = r.id;
    rec_->trace_event(std::move(ev));
  };

  auto finalize = [&](std::size_t i, Outcome o, double finish_us) {
    RequestRecord& rec = rep.records[i];
    Inflight& st = state[i];
    SWATOP_CHECK(!st.done) << "request " << rec.req.id << " finalized twice";
    st.done = true;
    rec.outcome = o;
    rec.finish_us = finish_us;
    if (o != Outcome::Rejected) --live_requests;
    switch (o) {
      case Outcome::Completed: {
        rec.latency_us = finish_us - rec.req.arrival_us;
        ++rep.completed;
        rep.images_completed += rec.req.images;
        last_finish = std::max(last_finish, finish_us);
        if (rec.latency_us > rec.req.slo_us + kLateEpsUs) ++rep.slo_violations;
        if (telem)
          telem->on_completed(net_of[i], finish_us, rec.latency_us,
                              rec.req.images,
                              rec.latency_us > rec.req.slo_us + kLateEpsUs);
        break;
      }
      case Outcome::Rejected:
        ++rep.rejected;
        if (telem) telem->on_rejected(net_of[i], finish_us);
        break;
      case Outcome::Shed:
        ++rep.shed;
        rec.wasted_us = st.dispatched_us;
        // Parts already on a chip keep running; the fleet stays busy with
        // work nobody will receive.  That time is reported, not hidden.
        last_finish = std::max(last_finish, st.max_finish_us);
        if (telem) telem->on_shed(net_of[i], finish_us);
        break;
    }
    if (st.sampled) {
      // Close the lifecycle chain on the request track: an un-dispatched
      // request still owes its "queued" span (arrival -> drop decision),
      // then a dur-0 terminal span anchors the flow end.
      if (!st.started && o != Outcome::Rejected)
        request_span(rec.req, "queued", rec.req.arrival_us,
                     finish_us - rec.req.arrival_us);
      request_span(rec.req, outcome_name(o), finish_us, 0.0);
      request_flow(rec.req, 'f', request_track(rec.req.id), finish_us);
    }
    if (tracing && o != Outcome::Completed) {
      obs::TraceEvent ev;
      ev.name = std::string(outcome_name(o)) + ":" + rec.req.net;
      ev.cat = obs::Category::Serve;
      ev.pid = 2;
      ev.tid = obs::Track::kServeAdmission;
      ev.ts = finish_us;
      ev.instant = true;
      ev.arg_name[0] = "request";
      ev.arg[0] = rec.req.id;
      ev.arg_name[1] = "images";
      ev.arg[1] = rec.req.images;
      rec_->trace_event(std::move(ev));
    }
  };

  // Admission on arrival: reject when even the optimistic schedule -- every
  // part of the request starting on the earliest-free chip in parallel --
  // already misses the (headroom-scaled) deadline.  This is a policy
  // predictor; the hard completed=>on-time guarantee is the exact per-slice
  // check at dispatch below.
  auto admit = [&](std::size_t i) {
    const Request& r = trace[i];
    if (telem) telem->on_arrival(net_of[i], r.arrival_us);
    if (tracing && sample_frac > 0.0 && sample_request(r.id, sample_frac)) {
      state[i].sampled = true;
      if (telem) telem->note_sampled();
      request_span(r, "arrive", r.arrival_us, 0.0);
      request_flow(r, 's', request_track(r.id), r.arrival_us);
    }
    if (cfg_.admission.enabled) {
      const double start = fleet.earliest_start_us(now);
      double exec_max = 0.0;
      for (std::int64_t part : ladder_parts(r.images, bc))
        exec_max = std::max(exec_max, cost_.cost(r.net, part).us);
      const double budget = r.arrival_us + cfg_.admission.headroom * r.slo_us;
      if (start + exec_max > budget) {
        finalize(i, Outcome::Rejected, now);
        return;
      }
    }
    batcher.enqueue(r);
    ++live_requests;
    if (telem) telem->on_admitted(net_of[i], now);
  };

  // Dispatch: fill idle chips with ready sub-batches, shedding any request
  // whose deadline is unreachable even if its slice ran right now.
  auto dispatch = [&](bool drain) {
    for (;;) {
      const int chip = fleet.idle_chip(now);
      if (chip < 0) return;
      std::optional<SubBatch> sb = batcher.peek(now, drain);
      if (!sb) return;
      const double exec = cost_.cost(sb->net, sb->images).us;
      if (cfg_.admission.enabled) {
        // A slice's sub-batch would finish at now + exec, and the request
        // completes no earlier than its latest part -- so deadline < now +
        // exec means the request can no longer make it.  Shed it (drop its
        // queued images) and re-form the batch from the survivors.
        bool dropped = false;
        for (const SubBatch::Slice& s : sb->slices) {
          const std::size_t i = index.at(s.request_id);
          const double budget = trace[i].arrival_us +
                                cfg_.admission.headroom * trace[i].slo_us;
          if (now + exec > budget) {
            batcher.drop(s.request_id);
            finalize(i, Outcome::Shed, now);
            dropped = true;
          }
        }
        if (dropped) continue;  // re-peek: the batch shrank or vanished
      }
      std::optional<SubBatch> got = batcher.pop(now, drain);
      SWATOP_CHECK(got && got->net == sb->net && got->images == sb->images)
          << "pop diverged from peek";
      const double finish = fleet.dispatch(chip, now, exec, sb->images);
      ++rep.batches;
      if (telem) telem->on_dispatch(now, sb->images, exec);
      for (const SubBatch::Slice& s : sb->slices) {
        const std::size_t i = index.at(s.request_id);
        Inflight& st = state[i];
        st.max_finish_us = std::max(st.max_finish_us, finish);
        st.dispatched_us += exec * static_cast<double>(s.images) /
                            static_cast<double>(sb->images);
        if (st.sampled) {
          // The wait is over once the first slice lands on a chip; each
          // slice adds a flow step bound to that chip's sub-batch span.
          if (!st.started)
            request_span(trace[i], "queued", trace[i].arrival_us,
                         now - trace[i].arrival_us);
          request_flow(trace[i], 't', obs::Track::kServeChip0 + chip, now);
        }
        st.started = true;
        if (s.final_slice) finalize(i, Outcome::Completed, st.max_finish_us);
      }
      if (tracing) {
        obs::TraceEvent ev;
        ev.name = sb->net + " x" + std::to_string(sb->images);
        ev.cat = obs::Category::Serve;
        ev.pid = 2;
        ev.tid = obs::Track::kServeChip0 + chip;
        ev.ts = now;
        ev.dur = exec;
        ev.arg_name[0] = "images";
        ev.arg[0] = sb->images;
        ev.arg_name[1] = "requests";
        ev.arg[1] = static_cast<std::int64_t>(sb->slices.size());
        rec_->trace_event(std::move(ev));
      }
    }
  };

  // The event loop: admit, dispatch, then jump to the next arrival, batcher
  // head-timeout, or chip completion.  Single-threaded by construction --
  // event order, and therefore every decision, is deterministic.
  for (;;) {
    while (next < trace.size() && trace[next].arrival_us <= now)
      admit(next++);
    rep.max_queue_images =
        std::max(rep.max_queue_images, batcher.queued_images());
    dispatch(/*drain=*/next >= trace.size());
    double t = kInf;
    if (next < trace.size()) t = std::min(t, trace[next].arrival_us);
    t = std::min(t, batcher.next_deadline_us(now));
    t = std::min(t, fleet.next_free_us(now));
    if (t == kInf) break;
    SWATOP_CHECK(t > now) << "event loop stuck at t=" << t;
    depth_integral += static_cast<double>(batcher.queued_images()) * (t - now);
    if (telem) telem->advance(t);
    now = t;
  }
  SWATOP_CHECK(batcher.empty()) << "event loop exited with queued work";
  SWATOP_CHECK(rep.completed + rep.rejected + rep.shed == rep.offered)
      << "request accounting out of sync";
  if (telem) {
    // The loop exits only once every chip is idle, so `now` is past every
    // buffered completion timestamp.
    telem->finish(now);
    rep.telemetry = telem->result();
    // Conservation: the windows tile the run, so summing any counter over
    // the timeline must reproduce the end-of-run total.
    std::int64_t arrivals = 0, admitted = 0, rejected = 0, shed = 0,
                 completed = 0, images = 0, batches = 0;
    for (const TelemetryWindow& w : rep.telemetry.windows) {
      arrivals += w.arrivals;
      admitted += w.admitted;
      rejected += w.rejected;
      shed += w.shed;
      completed += w.completed;
      images += w.images_completed;
      batches += w.batches;
    }
    SWATOP_CHECK(arrivals == rep.offered && admitted + rejected == rep.offered)
        << "telemetry arrival windows do not tile the run";
    SWATOP_CHECK(rejected == rep.rejected && shed == rep.shed &&
                 completed == rep.completed && images == rep.images_completed)
        << "telemetry outcome windows do not tile the run";
    SWATOP_CHECK(batches == rep.batches)
        << "telemetry dispatch windows do not tile the run";
    if (tracing) {
      for (const BurnAlert& a : rep.telemetry.alerts) {
        obs::TraceEvent ev;
        ev.name = "burn-alert:" + a.net;
        ev.cat = obs::Category::Serve;
        ev.pid = 2;
        ev.tid = obs::Track::kServeAdmission;
        ev.ts = a.t_us;
        ev.instant = true;
        ev.arg_name[0] = "window";
        ev.arg[0] = a.window;
        ev.arg_name[1] = "burn_x100";
        ev.arg[1] = static_cast<std::int64_t>(a.burn * 100.0);
        rec_->trace_event(std::move(ev));
      }
    }
  }

  // -- Report assembly ----------------------------------------------------
  rep.shed_rate =
      rep.offered == 0
          ? 0.0
          : static_cast<double>(rep.rejected + rep.shed) /
                static_cast<double>(rep.offered);
  const double makespan_us = last_finish - rep.first_arrival_us;
  rep.makespan_s = makespan_us / 1e6;
  if (makespan_us > 0.0) {
    rep.throughput_rps = static_cast<double>(rep.completed) /
                         (makespan_us / 1e6);
    rep.throughput_ips = static_cast<double>(rep.images_completed) /
                         (makespan_us / 1e6);
    rep.mean_queue_images = depth_integral / makespan_us;
    rep.utilization = fleet.total_busy_us() /
                      (static_cast<double>(fleet.chips()) * makespan_us);
  }
  rep.mean_batch_images =
      rep.batches == 0 ? 0.0
                       : static_cast<double>(rep.images_completed) /
                             static_cast<double>(rep.batches);
  rep.chips = fleet.chip_stats();
  rep.cost = cost_.stats();

  std::vector<double> all_lat;
  std::map<std::string, NetServingStats> per_net;
  std::map<std::string, std::vector<double>> per_net_lat;
  for (const RequestRecord& r : rep.records) {
    NetServingStats& ns = per_net[r.req.net];
    ns.net = r.req.net;
    ++ns.offered;
    ns.images_offered += r.req.images;
    ns.slo_ms = std::max(ns.slo_ms, r.req.slo_us / 1e3);
    switch (r.outcome) {
      case Outcome::Completed:
        ++ns.completed;
        ns.images_completed += r.req.images;
        all_lat.push_back(r.latency_us);
        per_net_lat[r.req.net].push_back(r.latency_us);
        if (r.latency_us > r.req.slo_us + kLateEpsUs) ++ns.slo_violations;
        break;
      case Outcome::Rejected: ++ns.rejected; break;
      case Outcome::Shed:
        ++ns.shed;
        rep.wasted_ms += r.wasted_us / 1e3;
        break;
    }
  }
  std::sort(all_lat.begin(), all_lat.end());
  rep.p50_ms = percentile_ms(all_lat, 0.50);
  rep.p99_ms = percentile_ms(all_lat, 0.99);
  if (!all_lat.empty()) {
    rep.max_ms = all_lat.back() / 1e3;
    double sum = 0.0;
    for (double v : all_lat) sum += v;
    rep.mean_ms = sum / static_cast<double>(all_lat.size()) / 1e3;
  }
  for (auto& [net, ns] : per_net) {
    std::vector<double>& lat = per_net_lat[net];
    std::sort(lat.begin(), lat.end());
    ns.p50_ms = percentile_ms(lat, 0.50);
    ns.p99_ms = percentile_ms(lat, 0.99);
    if (!lat.empty()) ns.max_ms = lat.back() / 1e3;
    rep.per_net.push_back(ns);
  }

  if (rec_ != nullptr) {
    obs::ServeCounters& sc = rec_->counters().serve;
    sc.requests_offered += rep.offered;
    sc.requests_completed += rep.completed;
    sc.requests_rejected += rep.rejected;
    sc.requests_shed += rep.shed;
    sc.images_completed += rep.images_completed;
    sc.batches_dispatched += rep.batches;
    sc.slo_violations += rep.slo_violations;
    sc.busy_us += fleet.total_busy_us();
    sc.wasted_us += rep.wasted_ms * 1e3;
  }
  return rep;
}

std::string ServingReport::text() const {
  std::string out;
  appendf(out, "== serving report ==\n");
  appendf(out,
          "offered    %lld requests (%lld images) over %.2f s of arrivals\n",
          static_cast<long long>(offered),
          static_cast<long long>(images_offered),
          (last_arrival_us - first_arrival_us) / 1e6);
  const double done_pct =
      offered == 0 ? 0.0
                   : 100.0 * static_cast<double>(completed) /
                         static_cast<double>(offered);
  appendf(out,
          "outcomes   %lld completed (%.1f%%), %lld rejected, %lld shed -> "
          "shed rate %.1f%%\n",
          static_cast<long long>(completed), done_pct,
          static_cast<long long>(rejected), static_cast<long long>(shed),
          100.0 * shed_rate);
  appendf(out,
          "latency    p50 %.2f ms   p99 %.2f ms   mean %.2f ms   max %.2f ms"
          "   (%lld SLO violations)\n",
          p50_ms, p99_ms, mean_ms, max_ms,
          static_cast<long long>(slo_violations));
  appendf(out, "throughput %.1f req/s, %.1f img/s sustained over %.2f s\n",
          throughput_rps, throughput_ips, makespan_s);
  appendf(out, "queue      mean %.1f images, max %lld\n", mean_queue_images,
          static_cast<long long>(max_queue_images));
  appendf(out,
          "fleet      %zu chips at %.1f%% utilization, %lld batches, mean "
          "%.2f img/batch, %.1f ms wasted on shed splits\n",
          chips.size(), 100.0 * utilization, static_cast<long long>(batches),
          mean_batch_images, wasted_ms);
  appendf(out,
          "cost       %lld profiles (%lld shapes tuned, %lld cache hits), "
          "%lld memoized lookups\n",
          static_cast<long long>(cost.profiles),
          static_cast<long long>(cost.shapes_tuned),
          static_cast<long long>(cost.cache_hits),
          static_cast<long long>(cost.memo_hits));
  for (const NetServingStats& ns : per_net) {
    appendf(out,
            "  %-8s offered %-5lld completed %-5lld rejected %-4lld shed "
            "%-4lld p50 %8.2f ms  p99 %8.2f ms  slo %.0f ms\n",
            ns.net.c_str(), static_cast<long long>(ns.offered),
            static_cast<long long>(ns.completed),
            static_cast<long long>(ns.rejected),
            static_cast<long long>(ns.shed), ns.p50_ms, ns.p99_ms, ns.slo_ms);
  }
  if (telemetry.enabled) {
    appendf(out,
            "telemetry  %zu windows of %.0f ms, %zu burn alerts, %lld "
            "requests lifecycle-traced\n",
            telemetry.windows.size(), telemetry.window_us / 1e3,
            telemetry.alerts.size(),
            static_cast<long long>(telemetry.sampled_requests));
    for (const NetStreamingStats& s : telemetry.per_net)
      appendf(out,
              "  stream %-8s completed %-5lld p50 %8.2f ms  p99 %8.2f ms  "
              "(streaming, <=%.2f%% rel err)\n",
              s.net.c_str(), static_cast<long long>(s.completed), s.p50_ms,
              s.p99_ms, 100.0 * obs::LatencyHistogram::kMaxRelError);
    for (const BurnAlert& a : telemetry.alerts)
      appendf(out, "  alert  %-8s window %-4lld at %8.1f ms: burn %.1fx "
              "the error budget\n",
              a.net.c_str(), static_cast<long long>(a.window), a.t_us / 1e3,
              a.burn);
  }
  return out;
}

std::string ServingReport::json() const {
  std::string out = "{";
  append_kv(out, "offered", offered, false);
  append_kv(out, "images_offered", images_offered, true);
  append_kv(out, "completed", completed, true);
  append_kv(out, "rejected", rejected, true);
  append_kv(out, "shed", shed, true);
  append_kv(out, "images_completed", images_completed, true);
  append_kv(out, "shed_rate", shed_rate, true);
  append_kv(out, "p50_ms", p50_ms, true);
  append_kv(out, "p99_ms", p99_ms, true);
  append_kv(out, "mean_ms", mean_ms, true);
  append_kv(out, "max_ms", max_ms, true);
  append_kv(out, "slo_violations", slo_violations, true);
  append_kv(out, "makespan_s", makespan_s, true);
  append_kv(out, "throughput_rps", throughput_rps, true);
  append_kv(out, "throughput_ips", throughput_ips, true);
  append_kv(out, "mean_queue_images", mean_queue_images, true);
  append_kv(out, "max_queue_images", max_queue_images, true);
  append_kv(out, "utilization", utilization, true);
  append_kv(out, "batches", batches, true);
  append_kv(out, "mean_batch_images", mean_batch_images, true);
  append_kv(out, "wasted_ms", wasted_ms, true);
  append_kv(out, "cost_profiles", cost.profiles, true);
  append_kv(out, "cost_memo_hits", cost.memo_hits, true);
  append_kv(out, "shapes_tuned", cost.shapes_tuned, true);
  append_kv(out, "cache_hits", cost.cache_hits, true);
  out += ",\"per_net\":[";
  for (std::size_t i = 0; i < per_net.size(); ++i) {
    const NetServingStats& ns = per_net[i];
    if (i > 0) out += ',';
    out += "{\"net\":\"" + ns.net + "\"";
    append_kv(out, "offered", ns.offered, true);
    append_kv(out, "completed", ns.completed, true);
    append_kv(out, "rejected", ns.rejected, true);
    append_kv(out, "shed", ns.shed, true);
    append_kv(out, "images_offered", ns.images_offered, true);
    append_kv(out, "images_completed", ns.images_completed, true);
    append_kv(out, "p50_ms", ns.p50_ms, true);
    append_kv(out, "p99_ms", ns.p99_ms, true);
    append_kv(out, "max_ms", ns.max_ms, true);
    append_kv(out, "slo_ms", ns.slo_ms, true);
    append_kv(out, "slo_violations", ns.slo_violations, true);
    out += '}';
  }
  out += "],\"chips\":[";
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const Fleet::ChipStats& c = chips[i];
    if (i > 0) out += ',';
    out += '{';
    append_kv(out, "busy_us", c.busy_us, false);
    append_kv(out, "batches", c.batches, true);
    append_kv(out, "images", c.images, true);
    out += '}';
  }
  out += "],\"telemetry\":" + telemetry.json() + "}";
  return out;
}

}  // namespace swatop::serve
