// Streaming telemetry for the serving front-end: fixed-width windows over
// the simulated clock (obs/timeseries.hpp), per-window and per-net latency
// histograms (obs/histogram.hpp), and a per-net SLO burn-rate monitor.
//
// The server drives one ServeTelemetry from the exact event-loop sites
// that decide outcomes; nothing is re-derived after the fact. Windows are
// anchored at t = 0 and tile the run exactly -- summing any per-window
// counter over the timeline reproduces the end-of-run report total, which
// Server::run checks. Completion events are dated at their *finish* time
// (known at dispatch), so a request appears in the window it actually
// completed in, not the window it was placed in; chip busy time is
// attributed to the dispatch window (documented, conserved).
//
// Burn rate: a window's per-net error fraction (rejected + shed + late
// completions, over that window's arrivals) divided by the configured SLO
// error budget. burn = 1 means the service is failing exactly at budget;
// a window whose burn crosses `burn_threshold` from below records an
// alert into the timeline, the report and (when tracing) the Chrome
// trace. Everything here is deterministic: one (trace, cost) pair yields
// a byte-identical timeline JSONL at any tuner thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"

namespace swatop::serve {

struct TelemetryConfig {
  bool enabled = false;     ///< collect the windowed timeline
  double window_us = 100e3; ///< fixed window width (default 100 ms)
  /// Fraction of requests emitting lifecycle span chains into the Chrome
  /// trace (deterministic request-id-hash sampling; needs a tracing
  /// recorder). 0 = off, 1 = every request.
  double trace_sample = 0.0;
  /// Per-net SLO error budget: the fraction of a window's offered
  /// requests allowed to fail (reject/shed/late) before burn = 1.
  double slo_budget = 0.05;
  /// Record an alert when a window's burn rate crosses this from below.
  double burn_threshold = 2.0;
};

/// Deterministic sampling decision: hashes the request id (splitmix64)
/// into [0, 1) and compares against `fraction`. Identical across runs,
/// platforms and tuner thread counts; independent of arrival order.
bool sample_request(std::int64_t id, double fraction);

/// Per-net slice of one window (only nets with activity are emitted).
struct WindowNetStats {
  std::string net;
  std::int64_t offered = 0;    ///< arrivals in this window
  std::int64_t completed = 0;  ///< completions dated in this window
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t late = 0;       ///< completed past SLO (admission off)
  double p50_ms = 0.0;         ///< histogram percentiles of this window's
  double p99_ms = 0.0;         ///< completions (kMaxRelError bound)
  double burn = 0.0;           ///< error fraction / slo_budget
};

struct TelemetryWindow {
  std::int64_t index = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  // Counters summed over the window.
  std::int64_t arrivals = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;
  std::int64_t images_completed = 0;
  std::int64_t batches = 0;
  std::int64_t images_dispatched = 0;
  double busy_us = 0.0;  ///< exec time of batches dispatched in the window
  // Gauges sampled at window close.
  double queue_images = 0.0;
  double queue_requests = 0.0;
  double inflight_requests = 0.0;  ///< admitted, not yet resolved
  double busy_chips = 0.0;
  std::vector<double> chip_busy;  ///< 0/1 per chip (first kMaxChipGauges)
  // Streaming latency percentiles of this window's completions.
  std::int64_t lat_count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<WindowNetStats> nets;
};

/// One burn-rate threshold crossing (rising edge), stamped at the close
/// of the window that crossed.
struct BurnAlert {
  std::string net;
  std::int64_t window = 0;
  double t_us = 0.0;
  double burn = 0.0;
};

/// Whole-run per-net streaming percentiles (every window's histogram
/// merged -- the mergeability contract in action).
struct NetStreamingStats {
  std::string net;
  std::int64_t completed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct TelemetryResult {
  bool enabled = false;
  double window_us = 0.0;
  std::vector<TelemetryWindow> windows;
  std::vector<BurnAlert> alerts;
  std::vector<NetStreamingStats> per_net;
  std::int64_t sampled_requests = 0;  ///< lifecycle-traced requests

  /// One JSON object per line per window (alerts embedded in the window
  /// that raised them); %.17g numbers, fixed field order -- byte-identical
  /// for identical runs.
  std::string jsonl() const;
  /// The same windows as one JSON array plus summary fields, for
  /// embedding in ServingReport::json().
  std::string json() const;
};

/// The recording half: the server calls the on_*() hooks at its decision
/// sites and finish() at loop exit; result() assembles the windows.
class ServeTelemetry {
 public:
  static constexpr int kMaxChipGauges = 16;  ///< per-chip busy-flag cap

  /// `nets` is the sorted universe of network names in the trace;
  /// `sampler` fills the gauge values at each window close (queue depth,
  /// in-flight, per-chip busy) -- state is constant between events, so
  /// boundary sampling is exact.
  using GaugeSampler = std::function<void(double t_us,
                                          std::vector<double>& gauges)>;
  ServeTelemetry(const TelemetryConfig& cfg, std::vector<std::string> nets,
                 int chips, GaugeSampler sampler);

  // Event hooks, all in simulated microseconds. `net` indexes the
  // constructor's universe. Completion times may lie in the future.
  // Inline: several fire per request on the serving event loop's hot
  // path, and each must stay a window-index divide plus array adds.
  void on_arrival(std::size_t net, double t_us) {
    const std::int64_t idx = ts_.index_of(t_us);
    ts_.count_at(idx, kArrivals);
    net_at(idx, net).offered += 1;
  }
  void on_admitted(std::size_t, double t_us) { ts_.count(kAdmitted, t_us); }
  void on_rejected(std::size_t net, double t_us) {
    const std::int64_t idx = ts_.index_of(t_us);
    ts_.count_at(idx, kRejected);
    net_at(idx, net).rejected += 1;
  }
  void on_shed(std::size_t net, double t_us) {
    const std::int64_t idx = ts_.index_of(t_us);
    ts_.count_at(idx, kShed);
    net_at(idx, net).shed += 1;
  }
  void on_dispatch(double t_us, std::int64_t images, double exec_us) {
    const std::int64_t idx = ts_.index_of(t_us);
    ts_.count_at(idx, kBatches);
    ts_.count_at(idx, kImagesDispatched, static_cast<double>(images));
    ts_.count_at(idx, kBusyUs, exec_us);
  }
  void on_completed(std::size_t net, double finish_us, double latency_us,
                    std::int64_t images, bool late) {
    const std::int64_t idx = ts_.index_of(finish_us);
    ts_.count_at(idx, kCompleted);
    ts_.count_at(idx, kImagesCompleted, static_cast<double>(images));
    NetWindow& nw = net_at(idx, net);
    nw.completed += 1;
    nw.late += late ? 1 : 0;
    nw.lat.add(latency_us / 1e3);
  }

  void advance(double t_us) { ts_.advance(t_us); }  ///< close windows to t
  void finish(double end_us);   ///< close the final partial window

  void note_sampled() { ++sampled_; }

  /// Assemble the result (call once, after finish()).
  TelemetryResult result() const;

 private:
  /// Counter channel layout inside the TimeSeries (order fixes the JSONL
  /// field order; names live in telemetry.cpp).
  enum Channel : std::size_t {
    kArrivals,
    kAdmitted,
    kRejected,
    kShed,
    kCompleted,
    kImagesCompleted,
    kBatches,
    kImagesDispatched,
    kBusyUs,
    kNumChannels,
  };

  struct NetWindow {
    std::int64_t offered = 0, completed = 0, rejected = 0, shed = 0,
                 late = 0;
    obs::LatencyHistogram lat;
  };

  /// Accumulator slot for window `idx` and net `net`: the open window's
  /// slots live in cur_nets_, window cur_win_ + 1 + d's in
  /// future_nets_[d]. Rotation happens in the TimeSeries on_close
  /// callback, keeping both rings in lockstep.
  NetWindow& net_at(std::int64_t idx, std::size_t net) {
    if (idx == cur_win_) return cur_nets_[net];
    return net_at_future(idx, net);
  }
  NetWindow& net_at_future(std::int64_t idx, std::size_t net);

  TelemetryConfig cfg_;
  std::vector<std::string> nets_;
  int chips_;
  obs::TimeSeries ts_;
  std::int64_t cur_win_ = 0;            ///< mirrors ts_'s open window
  std::vector<NetWindow> cur_nets_;     ///< one slot per net
  std::deque<std::vector<NetWindow>> future_nets_;
  /// Per-net slots of every closed window, parallel to ts_.windows().
  std::vector<std::vector<NetWindow>> archive_;
  std::int64_t sampled_ = 0;
};

}  // namespace swatop::serve
