// Chip execution costs for the serving simulator.
//
// A sub-batch placed on a fleet chip runs the whole network end-to-end on
// that chip's core groups; its cost in simulated time is what the cycle
// simulator says it is. EngineCostProvider obtains those cycles from
// timing-only GraphEngine runs -- tune-on-first-miss through the schedule
// cache, then memoized per (net, sub-batch) so a serving run prices each
// distinct sub-batch shape exactly once. SyntheticCostProvider is the
// engine-free analytic stand-in the unit tests and quick demos use.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/engine.hpp"

namespace swatop::serve {

/// Cost of one sub-batch on one chip.
struct ChipCost {
  double cycles = 0.0;
  double us = 0.0;      ///< cycles / (clock_ghz * 1e3)
  int groups = 1;       ///< core groups the run data-parallels over
  bool profiled_fresh = false;  ///< true the first time this key was priced
};

/// Aggregate profiling traffic, for reports.
struct CostProviderStats {
  std::int64_t profiles = 0;      ///< distinct (net, images) priced
  std::int64_t memo_hits = 0;     ///< cost() calls served from the memo
  std::int64_t shapes_tuned = 0;  ///< layer tunings across all profiles
  std::int64_t cache_hits = 0;    ///< of those, schedule-cache hits
};

class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Price `images` of `net` on one chip. Deterministic: the same key
  /// always returns the same cost.
  virtual ChipCost cost(const std::string& net, std::int64_t images) = 0;

  virtual CostProviderStats stats() const { return {}; }
};

/// Cycle-accurate costs from timing-only GraphEngine runs. One engine (and
/// therefore one schedule cache, trace-replay executor and pruner) is
/// shared across every profile, so repeated layer shapes tune once for the
/// whole serving run; whole-net costs are memoized per (net, images).
/// Thread-safe: cost() serializes profiling under one lock (warm calls are
/// a locked map lookup); tuning parallelism comes from
/// SwatopConfig::tune_threads inside each profile, and the pick -- hence
/// the priced cycles -- is identical at any thread count.
class EngineCostProvider : public CostProvider {
 public:
  struct Options {
    /// Core groups a chip data-parallels a sub-batch over (clamped to the
    /// sub-batch size: a batch-1 request runs on a single CG -- this
    /// simulator has no intra-request parallelism, the honest cost of
    /// batch-1 serving on SW26010).
    int groups_per_chip = 4;
    graph::ConvMethod method = graph::ConvMethod::Auto;
    bool fusion = true;
    bool residency = true;
  };

  explicit EngineCostProvider(SwatopConfig cfg = {});
  EngineCostProvider(SwatopConfig cfg, Options opts);

  ChipCost cost(const std::string& net, std::int64_t images) override;
  CostProviderStats stats() const override;

  const SwatopConfig& config() const { return engine_.config(); }

 private:
  Options opts_;
  graph::GraphEngine engine_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::int64_t>, ChipCost> memo_;
  std::map<std::string, graph::Graph> graphs_;
  CostProviderStats stats_;
};

/// Analytic costs for tests and engine-free demos: a fixed per-launch
/// overhead plus a per-image term that data-parallelizes over the chip's
/// core groups, mirroring the engine's min(groups, batch) rule. Strictly
/// deterministic and monotone in the sub-batch size.
class SyntheticCostProvider : public CostProvider {
 public:
  struct NetCost {
    double launch_us = 300.0;    ///< fixed per-sub-batch overhead
    double image_us = 1000.0;    ///< one image on one core group
  };

  explicit SyntheticCostProvider(int groups_per_chip = 4)
      : groups_per_chip_(groups_per_chip) {}

  void set_net(const std::string& net, NetCost c) { nets_[net] = c; }

  ChipCost cost(const std::string& net, std::int64_t images) override;

 private:
  int groups_per_chip_;
  std::map<std::string, NetCost> nets_;  ///< missing nets use defaults
};

}  // namespace swatop::serve
