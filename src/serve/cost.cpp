#include "serve/cost.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "graph/build.hpp"

namespace swatop::serve {

EngineCostProvider::EngineCostProvider(SwatopConfig cfg)
    : EngineCostProvider(std::move(cfg), Options{}) {}

EngineCostProvider::EngineCostProvider(SwatopConfig cfg, Options opts)
    : opts_(opts), engine_(std::move(cfg)) {
  SWATOP_CHECK(opts_.groups_per_chip >= 1 && opts_.groups_per_chip <= 4)
      << "SW26010 has 4 core groups per chip; asked for "
      << opts_.groups_per_chip;
}

ChipCost EngineCostProvider::cost(const std::string& net,
                                  std::int64_t images) {
  SWATOP_CHECK(images >= 1) << "cost for " << images << " images";
  const std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(net, images);
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  auto git = graphs_.find(net);
  if (git == graphs_.end())
    git = graphs_.emplace(net, graph::build_net(net)).first;

  graph::NetOptions opts;
  opts.groups = static_cast<int>(
      std::min<std::int64_t>(opts_.groups_per_chip, images));
  opts.method = opts_.method;
  opts.fusion = opts_.fusion;
  opts.residency = opts_.residency;
  opts.mode = sim::ExecMode::TimingOnly;
  const graph::NetRunResult r = engine_.run(git->second, images, opts);

  ChipCost c;
  c.cycles = r.cycles;
  c.us = r.cycles / (engine_.config().machine.clock_ghz * 1e3);
  c.groups = r.groups_used;
  ++stats_.profiles;
  stats_.shapes_tuned += r.shapes_tuned;
  stats_.cache_hits += r.cache_hits;
  memo_.emplace(key, c);  // memoized entries report profiled_fresh = false
  ChipCost out = c;
  out.profiled_fresh = true;
  return out;
}

CostProviderStats EngineCostProvider::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ChipCost SyntheticCostProvider::cost(const std::string& net,
                                     std::int64_t images) {
  SWATOP_CHECK(images >= 1) << "cost for " << images << " images";
  NetCost nc;
  if (const auto it = nets_.find(net); it != nets_.end()) nc = it->second;
  const int groups = static_cast<int>(
      std::min<std::int64_t>(groups_per_chip_, images));
  ChipCost c;
  c.groups = groups;
  // Contiguous batch slices over the groups: the slowest group carries
  // ceil(images / groups) of them, same as the engine's split.
  c.us = nc.launch_us +
         nc.image_us * static_cast<double>(ceil_div(images, groups));
  c.cycles = c.us * 1.45e3;  // nominal SW26010 clock, for symmetry only
  return c;
}

}  // namespace swatop::serve
