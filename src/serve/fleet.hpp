// The simulated multi-chip fleet: N SW26010 chips, each a timeline of
// sub-batch executions.
//
// This generalizes the GraphEngine's multi-CG data parallelism one level
// up: within a chip, a sub-batch is split across the chip's core groups
// (the engine prices that, including the NoC barriers); across chips, the
// fleet scheduler places whole sub-batches. Each chip has its own clock
// (`free_at_us`); placement is earliest-free-chip with lowest-index
// tie-breaking, which is both the natural least-loaded policy and
// deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace swatop::serve {

struct FleetConfig {
  int chips = 4;
  int groups_per_chip = 4;  ///< CGs a sub-batch data-parallels over
};

class Fleet {
 public:
  explicit Fleet(FleetConfig cfg);

  const FleetConfig& config() const { return cfg_; }
  int chips() const { return cfg_.chips; }

  /// Lowest-index chip idle at `now` (-1 when all are busy).
  int idle_chip(double now_us) const;

  /// Earliest completion time among chips still busy at `now` (+inf when
  /// every chip is idle -- there is no completion event to wait for).
  double next_free_us(double now_us) const;

  /// Earliest time any chip is (or becomes) free -- admission control's
  /// optimistic start-time estimate.
  double earliest_start_us(double now_us) const;

  /// Run `exec_us` of work on `chip` starting at `now` (the chip must be
  /// idle); returns the finish time and advances the chip's clock.
  double dispatch(int chip, double now_us, double exec_us,
                  std::int64_t images);

  /// Whether `chip` is still executing at time `t` (telemetry gauge).
  bool busy_at(int chip, double t_us) const;
  /// Number of chips still executing at time `t` (telemetry gauge).
  int busy_count(double t_us) const;

  struct ChipStats {
    double free_at_us = 0.0;
    double busy_us = 0.0;          ///< total executed work
    std::int64_t batches = 0;
    std::int64_t images = 0;
  };
  const std::vector<ChipStats>& chip_stats() const { return chips_; }

  double total_busy_us() const;

 private:
  FleetConfig cfg_;
  std::vector<ChipStats> chips_;
};

}  // namespace swatop::serve
