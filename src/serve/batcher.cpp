#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace swatop::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DynamicBatcher::DynamicBatcher(BatcherConfig cfg) : cfg_(std::move(cfg)) {
  SWATOP_CHECK(cfg_.max_batch >= 1) << "max_batch " << cfg_.max_batch;
  SWATOP_CHECK(cfg_.max_wait_us >= 0.0) << "max_wait " << cfg_.max_wait_us;
  if (!cfg_.coalesce) {
    cfg_.max_batch = 1;
    cfg_.ladder = {1};
  }
  if (cfg_.ladder.empty())
    for (std::int64_t s = 1; s <= cfg_.max_batch; s *= 2)
      cfg_.ladder.push_back(s);
  SWATOP_CHECK(cfg_.ladder.front() == 1)
      << "ladder must start at 1 so any queue can dispatch";
  for (std::size_t i = 0; i < cfg_.ladder.size(); ++i) {
    SWATOP_CHECK(i == 0 || cfg_.ladder[i] > cfg_.ladder[i - 1])
        << "ladder must be strictly ascending";
    SWATOP_CHECK(cfg_.ladder[i] <= cfg_.max_batch)
        << "ladder size " << cfg_.ladder[i] << " > max_batch "
        << cfg_.max_batch;
  }
}

void DynamicBatcher::enqueue(const Request& r) {
  SWATOP_CHECK(r.images >= 1) << "request " << r.id << " with " << r.images
                              << " images";
  NetQueue& nq = queues_[r.net];
  nq.q.push_back({r.id, r.images, r.arrival_us, next_seq_++});
  nq.images += r.images;
  queued_images_ += r.images;
  ++queued_requests_;
}

std::int64_t DynamicBatcher::drop(std::int64_t request_id) {
  for (auto qit = queues_.begin(); qit != queues_.end(); ++qit) {
    NetQueue& nq = qit->second;
    for (auto it = nq.q.begin(); it != nq.q.end(); ++it) {
      if (it->request_id != request_id) continue;
      const std::int64_t images = it->images_left;
      nq.images -= images;
      queued_images_ -= images;
      --queued_requests_;
      nq.q.erase(it);
      if (nq.q.empty()) queues_.erase(qit);
      return images;
    }
  }
  return 0;
}

bool DynamicBatcher::net_ready(const NetQueue& nq, double now_us,
                               bool drain) const {
  if (nq.q.empty()) return false;
  if (drain || !cfg_.coalesce) return true;
  if (nq.images >= cfg_.max_batch) return true;
  // Same expression next_deadline_us() hands the event loop, so when the
  // loop advances to that instant this comparison is true bit-for-bit
  // (computing `now - arrival >= wait` instead can round the other way and
  // wedge the loop at t == now).
  return now_us >= nq.q.front().arrival_us + cfg_.max_wait_us;
}

double DynamicBatcher::next_deadline_us(double now_us) const {
  // Earliest *future* instant a currently-not-ready network becomes ready
  // by its head timing out. Already-ready networks are dispatchable now
  // (gated only on chip availability) and empty queues have no deadline --
  // both contribute +inf, so an idle server never busy-waits here.
  double t = kInf;
  for (const auto& [net, nq] : queues_) {
    if (nq.q.empty() || net_ready(nq, now_us, /*drain=*/false)) continue;
    t = std::min(t, nq.q.front().arrival_us + cfg_.max_wait_us);
  }
  return t;
}

bool DynamicBatcher::ready(double now_us, bool drain) const {
  for (const auto& [net, nq] : queues_)
    if (net_ready(nq, now_us, drain)) return true;
  return false;
}

const std::string* DynamicBatcher::pick_net(double now_us,
                                            bool drain) const {
  const std::string* best = nullptr;
  std::int64_t best_seq = 0;
  for (const auto& [net, nq] : queues_) {
    if (!net_ready(nq, now_us, drain)) continue;
    if (best == nullptr || nq.q.front().seq < best_seq) {
      best = &net;
      best_seq = nq.q.front().seq;
    }
  }
  return best;
}

SubBatch DynamicBatcher::plan(const NetQueue& nq,
                              const std::string& net) const {
  // Largest cached ladder size the queued images can fill.
  std::int64_t size = cfg_.ladder.front();
  for (std::int64_t s : cfg_.ladder)
    if (s <= std::min(nq.images, cfg_.max_batch)) size = s;

  SubBatch sb;
  sb.net = net;
  sb.images = size;
  sb.oldest_arrival_us = nq.q.front().arrival_us;
  std::int64_t taken = 0;
  for (auto it = nq.q.begin(); taken < size; ++it) {
    SWATOP_CHECK(it != nq.q.end()) << "batcher accounting out of sync";
    const std::int64_t take = std::min(it->images_left, size - taken);
    sb.slices.push_back({it->request_id, take, take == it->images_left});
    sb.oldest_arrival_us = std::min(sb.oldest_arrival_us, it->arrival_us);
    taken += take;
  }
  return sb;
}

void DynamicBatcher::consume(const std::string& net, const SubBatch& sb) {
  NetQueue& nq = queues_.at(net);
  for (const SubBatch::Slice& s : sb.slices) {
    SWATOP_CHECK(!nq.q.empty() && nq.q.front().request_id == s.request_id)
        << "sub-batch does not match the queue head";
    nq.q.front().images_left -= s.images;
    if (nq.q.front().images_left == 0) {
      nq.q.pop_front();
      --queued_requests_;
    }
  }
  nq.images -= sb.images;
  queued_images_ -= sb.images;
  if (nq.q.empty()) queues_.erase(net);
}

std::optional<SubBatch> DynamicBatcher::pop(double now_us, bool drain) {
  const std::string* net = pick_net(now_us, drain);
  if (net == nullptr) return std::nullopt;
  const std::string name = *net;  // consume() erases the map entry
  SubBatch sb = plan(queues_.at(name), name);
  consume(name, sb);
  return sb;
}

std::optional<SubBatch> DynamicBatcher::peek(double now_us,
                                             bool drain) const {
  const std::string* net = pick_net(now_us, drain);
  if (net == nullptr) return std::nullopt;
  return plan(queues_.at(*net), *net);
}

std::int64_t DynamicBatcher::queued_images(const std::string& net) const {
  const auto it = queues_.find(net);
  return it == queues_.end() ? 0 : it->second.images;
}

}  // namespace swatop::serve
