// Request queue + dynamic batcher: coalesce compatible requests into
// sub-batches matched to the schedule-cache ladder.
//
// Requests queue per network (a sub-batch never mixes networks -- one
// tuned whole-net schedule runs one graph). A network's queue becomes
// *ready* to dispatch when it can fill `max_batch` images, or when its
// oldest request has waited `max_wait_us` (the latency knob: a lonely
// request never waits longer than that for company). Sub-batch sizes are
// quantized to a ladder of cached sizes (default powers of two up to
// max_batch) so a serving run prices each (net, size) once through the
// schedule cache instead of tuning every arithmetic batch size it happens
// to see. Requests larger than max_batch are split across sub-batches and
// complete when their last slice does.
//
// With `coalesce = false` the batcher degrades to the batch-1 FIFO
// baseline: strict arrival order across all networks, one image per
// sub-batch -- the "no serving front-end" strawman bench_serving compares
// against.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace swatop::serve {

struct BatcherConfig {
  std::int64_t max_batch = 8;   ///< max images per sub-batch
  double max_wait_us = 2000.0;  ///< oldest-request coalescing deadline
  /// Sub-batch sizes to dispatch at (sorted ascending, must start at 1);
  /// empty = powers of two up to max_batch. These are the sizes the cost
  /// provider prices -- i.e. the cached-schedule ladder.
  std::vector<std::int64_t> ladder;
  /// false: batch-1 FIFO baseline (no coalescing, strict arrival order).
  bool coalesce = true;
};

/// A dispatchable unit: one network, one ladder size, slices of one or
/// more queued requests.
struct SubBatch {
  std::string net;
  std::int64_t images = 0;
  struct Slice {
    std::int64_t request_id = 0;
    std::int64_t images = 0;  ///< this slice's share of the request
    bool final_slice = false; ///< completes the request
  };
  std::vector<Slice> slices;
  double oldest_arrival_us = 0.0;  ///< of the requests in the batch
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig cfg);

  const BatcherConfig& config() const { return cfg_; }

  /// Enqueue an admitted request (arrival order = call order).
  void enqueue(const Request& r);

  /// Remove a queued request entirely (admission shed); returns the number
  /// of images dropped (0 if the id is not queued).
  std::int64_t drop(std::int64_t request_id);

  /// Earliest future time a currently-not-ready network becomes ready by
  /// its head timing out; +inf when the queue is empty (an empty queue has
  /// no deadline to fire -- the event loop must not busy-wait on it) or
  /// when every queued network is already ready.
  double next_deadline_us(double now_us) const;

  /// True when some network is ready to dispatch at `now` (full batch or
  /// expired head). `drain` treats any non-empty queue as ready (end of
  /// trace: nothing else is coming, waiting longer buys nothing).
  bool ready(double now_us, bool drain) const;

  /// Form the next sub-batch at `now`: among ready networks pick the one
  /// whose head request arrived first, take the largest ladder size that
  /// fits the queued images, consume queue head slices in FIFO order.
  /// Returns nullopt when nothing is ready.
  std::optional<SubBatch> pop(double now_us, bool drain);

  /// Peek at the net/images the next pop() would dispatch (admission
  /// control prices it before committing). Same nullopt contract as pop().
  std::optional<SubBatch> peek(double now_us, bool drain) const;

  std::int64_t queued_images() const { return queued_images_; }
  std::int64_t queued_requests() const { return queued_requests_; }
  bool empty() const { return queued_requests_ == 0; }

  /// Queued images of one network (tests / reports).
  std::int64_t queued_images(const std::string& net) const;

 private:
  struct Pending {
    std::int64_t request_id = 0;
    std::int64_t images_left = 0;
    double arrival_us = 0.0;
    std::int64_t seq = 0;  ///< global FIFO order across networks
  };
  struct NetQueue {
    std::deque<Pending> q;
    std::int64_t images = 0;
  };

  bool net_ready(const NetQueue& nq, double now_us, bool drain) const;
  /// The ready network with the earliest head (by global sequence), or
  /// nullptr.
  const std::string* pick_net(double now_us, bool drain) const;
  /// The sub-batch the given queue would dispatch (no state change).
  SubBatch plan(const NetQueue& nq, const std::string& net) const;
  /// Apply a planned sub-batch to its queue (must match the queue head).
  void consume(const std::string& net, const SubBatch& sb);

  BatcherConfig cfg_;
  std::map<std::string, NetQueue> queues_;  ///< ordered: deterministic scan
  std::int64_t queued_images_ = 0;
  std::int64_t queued_requests_ = 0;
  std::int64_t next_seq_ = 0;
};

}  // namespace swatop::serve
