#include "serve/fleet.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace swatop::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Fleet::Fleet(FleetConfig cfg) : cfg_(cfg) {
  SWATOP_CHECK(cfg_.chips >= 1) << "fleet of " << cfg_.chips << " chips";
  SWATOP_CHECK(cfg_.groups_per_chip >= 1 && cfg_.groups_per_chip <= 4)
      << "SW26010 has 4 core groups per chip; asked for "
      << cfg_.groups_per_chip;
  chips_.resize(static_cast<std::size_t>(cfg_.chips));
}

int Fleet::idle_chip(double now_us) const {
  for (int c = 0; c < cfg_.chips; ++c)
    if (chips_[static_cast<std::size_t>(c)].free_at_us <= now_us) return c;
  return -1;
}

double Fleet::next_free_us(double now_us) const {
  double t = kInf;
  for (const ChipStats& c : chips_)
    if (c.free_at_us > now_us) t = std::min(t, c.free_at_us);
  return t;
}

double Fleet::earliest_start_us(double now_us) const {
  double t = kInf;
  for (const ChipStats& c : chips_)
    t = std::min(t, std::max(now_us, c.free_at_us));
  return t;
}

double Fleet::dispatch(int chip, double now_us, double exec_us,
                       std::int64_t images) {
  SWATOP_CHECK(chip >= 0 && chip < cfg_.chips) << "chip " << chip;
  SWATOP_CHECK(exec_us > 0.0) << "exec " << exec_us << " us";
  ChipStats& c = chips_[static_cast<std::size_t>(chip)];
  SWATOP_CHECK(c.free_at_us <= now_us)
      << "dispatch to busy chip " << chip << " at " << now_us;
  c.free_at_us = now_us + exec_us;
  c.busy_us += exec_us;
  ++c.batches;
  c.images += images;
  return c.free_at_us;
}

bool Fleet::busy_at(int chip, double t_us) const {
  SWATOP_CHECK(chip >= 0 && chip < cfg_.chips) << "chip " << chip;
  return chips_[static_cast<std::size_t>(chip)].free_at_us > t_us;
}

int Fleet::busy_count(double t_us) const {
  int n = 0;
  for (const ChipStats& c : chips_)
    if (c.free_at_us > t_us) ++n;
  return n;
}

double Fleet::total_busy_us() const {
  double t = 0.0;
  for (const ChipStats& c : chips_) t += c.busy_us;
  return t;
}

}  // namespace swatop::serve
