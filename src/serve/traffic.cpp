#include "serve/traffic.hpp"

#include <cmath>

#include "common/check.hpp"

namespace swatop::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Run the seed through splitmix64 so nearby seeds (1, 2, 3...) land in
  // unrelated parts of the xorshift sequence; never allow the all-zero
  // state.
  std::uint64_t s = seed;
  s_ = splitmix64(s);
  if (s_ == 0) s_ = 0x9e3779b97f4a7c15ull;
}

std::uint64_t Rng::next_u64() {
  std::uint64_t x = s_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  s_ = x;
  return x * 0x2545f4914f6cdd1dull;
}

double Rng::next_double() {
  // Top 53 bits -> [0, 1); exact and platform-independent.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double rate) {
  SWATOP_CHECK(rate > 0.0) << "exponential rate " << rate;
  // -log(1 - u): u < 1 always, so the log argument is never 0.
  return -std::log(1.0 - next_double()) / rate;
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  SWATOP_CHECK(!weights.empty()) << "weighted draw from an empty vector";
  double total = 0.0;
  for (double w : weights) {
    SWATOP_CHECK(w >= 0.0) << "negative weight " << w;
    total += w;
  }
  SWATOP_CHECK(total > 0.0) << "weighted draw with all-zero weights";
  double u = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // u landed exactly on the total
}

const char* arrival_pattern_name(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::Poisson: return "poisson";
    case ArrivalPattern::Bursty: return "bursty";
  }
  return "?";
}

std::vector<Request> generate_trace(const TrafficConfig& cfg) {
  SWATOP_CHECK(!cfg.mix.empty()) << "traffic mix is empty";
  SWATOP_CHECK(cfg.rate_rps > 0.0) << "rate " << cfg.rate_rps << " rps";
  SWATOP_CHECK(cfg.duration_s > 0.0) << "duration " << cfg.duration_s;
  SWATOP_CHECK(!cfg.sizes.empty() &&
               cfg.sizes.size() == cfg.size_weights.size())
      << "sizes/size_weights mismatch: " << cfg.sizes.size() << " vs "
      << cfg.size_weights.size();
  for (std::int64_t s : cfg.sizes)
    SWATOP_CHECK(s >= 1) << "request batch size " << s;
  if (cfg.pattern == ArrivalPattern::Bursty) {
    SWATOP_CHECK(cfg.burst_factor >= 1.0)
        << "burst factor " << cfg.burst_factor;
    SWATOP_CHECK(cfg.burst_fraction >= 0.0 && cfg.burst_fraction <= 1.0)
        << "burst fraction " << cfg.burst_fraction;
    SWATOP_CHECK(cfg.burst_period_s > 0.0)
        << "burst period " << cfg.burst_period_s;
  }

  std::vector<double> mix_weights;
  mix_weights.reserve(cfg.mix.size());
  for (const NetMix& m : cfg.mix) mix_weights.push_back(m.weight);

  Rng rng(cfg.seed);
  std::vector<Request> trace;
  const double horizon_us = cfg.duration_s * 1e6;
  double t_us = 0.0;
  while (true) {
    // Instantaneous rate at the current time (requests per microsecond).
    double rate_rps = cfg.rate_rps;
    if (cfg.pattern == ArrivalPattern::Bursty) {
      const double period_us = cfg.burst_period_s * 1e6;
      const double phase = std::fmod(t_us, period_us) / period_us;
      if (phase < cfg.burst_fraction) rate_rps *= cfg.burst_factor;
    }
    // Thinning would be exact for the inhomogeneous process; stepping the
    // rate at the draw point is a deliberate simplification -- the traces
    // stay bursty, deterministic and cheap, which is all the serving
    // simulator needs.
    t_us += rng.next_exponential(rate_rps / 1e6);
    if (t_us >= horizon_us) break;

    const NetMix& m = cfg.mix[rng.next_weighted(mix_weights)];
    const std::size_t si = rng.next_weighted(cfg.size_weights);
    Request r;
    r.id = static_cast<std::int64_t>(trace.size());
    r.net = m.net;
    r.images = cfg.sizes[si];
    r.arrival_us = t_us;
    r.slo_us = m.slo_ms * 1e3;
    trace.push_back(std::move(r));
  }
  return trace;
}

}  // namespace swatop::serve
