// Template-based generator of the GEMM micro-kernel instruction streams.
//
// The paper's appendix describes hand-written assembly kernels with a 4x4
// register blocking of C, SIMD loads that broadcast over the row/column
// communication buses (vlddr/vlddc/vldder/vlddec), and software pipelining
// that finishes 16 vmads in 16 cycles. Eight variants exist: A tile row- or
// column-major x B tile row- or column-major x vectorization along M or N.
// This module emits those instruction streams; the pipeline simulator prices
// them, and the scheduler's layout/vectorization transformations then have a
// real cost surface to explore.
#pragma once

#include <string>
#include <vector>

#include "isa/instr.hpp"
#include "sim/config.hpp"

namespace swatop::isa {

enum class VecDim { M, N };

/// One of the eight micro-kernel variants.
struct KernelVariant {
  bool a_col_major = true;  ///< A tile stored with M as the leading dim
  bool b_col_major = true;  ///< B tile stored with K as the leading dim
  VecDim vec = VecDim::M;

  int index() const {
    return (a_col_major ? 0 : 1) + (b_col_major ? 0 : 2) +
           (vec == VecDim::M ? 0 : 4);
  }
  static KernelVariant from_index(int idx);
  std::string name() const;

  /// True when the vectorized operand's tile layout allows plain vector
  /// loads (one vlddr/vlddc per 4 elements); false means the kernel must
  /// assemble vectors from scalar lane inserts.
  bool vector_operand_contiguous() const {
    return vec == VecDim::M ? a_col_major : !b_col_major;
  }

  bool operator==(const KernelVariant& o) const {
    return index() == o.index();
  }
};

/// Register-block shape: `mv` vector registers along the vectorized
/// dimension (covering 4*mv elements) by `nb` elements along the scalar
/// dimension; C occupies mv*nb vector registers.
struct RegBlock {
  int mv = 4;
  int nb = 4;
};

/// Emit the software-pipelined repeating unit of the inner K loop: TWO
/// k-iterations (even/odd register parities), with next-iteration loads
/// interleaved among current-iteration vmads plus the loop-control scalar
/// ops. Feed to PipelineSim::steady_state_cycles and divide by 2.
std::vector<Instr> emit_kernel_pair(const KernelVariant& v, RegBlock rb,
                                    const sim::SimConfig& cfg);

/// Emit the block prologue: load the mv*nb C vectors into registers.
std::vector<Instr> emit_block_prologue(RegBlock rb);

/// Emit the block epilogue: store the C vectors back to SPM.
std::vector<Instr> emit_block_epilogue(RegBlock rb);

/// All eight variants, index order.
std::vector<KernelVariant> all_kernel_variants();

}  // namespace swatop::isa
