#include "isa/instr.hpp"

#include <sstream>

#include "common/check.hpp"

namespace swatop::isa {

Pipe pipe_of(Opcode op) {
  switch (op) {
    case Opcode::vmad:
    case Opcode::vadd:
    case Opcode::vmul:
      return Pipe::P0;
    case Opcode::vldd:
    case Opcode::vstd:
    case Opcode::ldse:
    case Opcode::vlddr:
    case Opcode::vlddc:
    case Opcode::vldder:
    case Opcode::vlddec:
    case Opcode::getr:
    case Opcode::getc:
      return Pipe::P1;
    case Opcode::ldi:
    case Opcode::addi:
    case Opcode::bne:
    case Opcode::nop:
      return Pipe::Either;
  }
  SWATOP_UNREACHABLE("bad opcode");
}

int latency_of(Opcode op, const sim::SimConfig& cfg) {
  switch (op) {
    case Opcode::vmad:
      return cfg.vmad_latency;
    case Opcode::vadd:
    case Opcode::vmul:
      return cfg.vmad_latency - 1;
    case Opcode::vldd:
    case Opcode::ldse:
      return cfg.vload_latency;
    case Opcode::vstd:
      return cfg.vstore_latency;
    case Opcode::vlddr:
    case Opcode::vlddc:
    case Opcode::vldder:
    case Opcode::vlddec:
    case Opcode::getr:
    case Opcode::getc:
      // Load plus bus transit: consumers see the broadcast value after the
      // register-communication latency.
      return cfg.reg_comm_latency;
    case Opcode::ldi:
    case Opcode::addi:
    case Opcode::bne:
    case Opcode::nop:
      return 1;
  }
  SWATOP_UNREACHABLE("bad opcode");
}

bool writes_register(Opcode op) {
  switch (op) {
    case Opcode::vstd:
    case Opcode::bne:
    case Opcode::nop:
      return false;
    default:
      return true;
  }
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::vmad: return "vmad";
    case Opcode::vadd: return "vadd";
    case Opcode::vmul: return "vmul";
    case Opcode::vldd: return "vldd";
    case Opcode::vstd: return "vstd";
    case Opcode::ldse: return "ldse";
    case Opcode::vlddr: return "vlddr";
    case Opcode::vlddc: return "vlddc";
    case Opcode::vldder: return "vldder";
    case Opcode::vlddec: return "vlddec";
    case Opcode::getr: return "getr";
    case Opcode::getc: return "getc";
    case Opcode::ldi: return "ldi";
    case Opcode::addi: return "addi";
    case Opcode::bne: return "bne";
    case Opcode::nop: return "nop";
  }
  return "?";
}

std::string Instr::to_string() const {
  std::ostringstream os;
  os << opcode_name(op);
  if (dst >= 0) os << " r" << dst;
  if (src1 >= 0) os << ", r" << src1;
  if (src2 >= 0) os << ", r" << src2;
  if (src3 >= 0) os << ", r" << src3;
  return os.str();
}

}  // namespace swatop::isa
