// Dual-issue in-order pipeline timing simulator for the virtual SW-ISA.
//
// Each cycle the CPE may issue one instruction to P0 and one to P1, strictly
// in program order; an instruction stalls until its source registers are
// ready (read-after-write). This reproduces the scheduling problem the
// paper's hand-written assembly kernels solve -- and lets the kernel
// generator verify that its software-pipelined bodies reach the "16 vmad in
// 16 cycles" steady state.
#pragma once

#include <cstdint>
#include <span>

#include "isa/instr.hpp"
#include "sim/config.hpp"

namespace swatop::isa {

struct PipelineResult {
  std::int64_t cycles = 0;        ///< completion cycle of the whole stream
  std::int64_t issued_p0 = 0;     ///< instructions issued to P0
  std::int64_t issued_p1 = 0;     ///< instructions issued to P1
  std::int64_t stall_cycles = 0;  ///< cycles with nothing issued
};

/// Per-iteration steady-state breakdown of a loop body: cycles plus the
/// issue/stall mix, all as the hi-vs-lo repetition difference (fractional
/// values are expected -- an iteration can straddle a cycle boundary). This
/// is what the observability layer's P0/P1 counters are built from.
struct SteadyStateStats {
  double cycles = 0.0;
  double issued_p0 = 0.0;
  double issued_p1 = 0.0;
  double stall_cycles = 0.0;
};

class PipelineSim {
 public:
  explicit PipelineSim(const sim::SimConfig& cfg) : cfg_(cfg) {}

  /// Price an instruction stream from a cold pipeline.
  PipelineResult run(std::span<const Instr> code) const;

  /// Steady-state cycles per iteration of a loop body: simulates the body
  /// repeated `hi` and `lo` times and divides the difference, so
  /// cross-iteration overlap (software pipelining) is honoured.
  double steady_state_cycles(std::span<const Instr> body, int lo = 4,
                             int hi = 12) const;

  /// Full per-iteration breakdown (cycles, P0/P1 issues, stalls) by the
  /// same differencing.
  SteadyStateStats steady_state_detail(std::span<const Instr> body,
                                       int lo = 4, int hi = 12) const;

 private:
  const sim::SimConfig& cfg_;
};

}  // namespace swatop::isa
