#include "isa/kernel_cache.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/check.hpp"

namespace swatop::isa {

namespace {

int log2_small(int v) {
  switch (v) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
  }
  SWATOP_UNREACHABLE("register block dims must be 1, 2 or 4");
}

/// Greedy decomposition of a length into blocks of 4/2/1 units.
void decompose(std::int64_t len, std::int64_t unit,
               std::vector<std::pair<int, std::int64_t>>& out) {
  // out accumulates (block_dim, count).
  for (int b : {4, 2, 1}) {
    const std::int64_t span = static_cast<std::int64_t>(b) * unit;
    const std::int64_t cnt = len / span;
    if (cnt > 0) out.emplace_back(b, cnt);
    len -= cnt * span;
  }
  SWATOP_CHECK(len == 0) << "length not decomposable by unit " << unit;
}

}  // namespace

int KernelCostDb::block_slot(RegBlock rb) {
  return log2_small(rb.mv) * 3 + log2_small(rb.nb);
}

KernelCostDb::KernelCostDb(const sim::SimConfig& cfg)
    : cfg_(cfg), pipe_(cfg_) {
  for (const KernelVariant& v : all_kernel_variants()) {
    for (int mv : {1, 2, 4}) {
      for (int nb : {1, 2, 4}) {
        const RegBlock rb{mv, nb};
        const auto pair = emit_kernel_pair(v, rb, cfg_);
        const SteadyStateStats ss = pipe_.steady_state_detail(pair, 2, 6);
        const double per_iter = ss.cycles / 2.0;
        const std::size_t vi = static_cast<std::size_t>(v.index());
        const std::size_t si = static_cast<std::size_t>(block_slot(rb));
        per_iter_[vi][si] = per_iter;
        // The emitted "pair" is two software-pipelined k-iterations; halve
        // the steady-state breakdown to per-iteration terms.
        per_iter_pipe_[vi][si] = {ss.cycles / 2.0, ss.issued_p0 / 2.0,
                                  ss.issued_p1 / 2.0, ss.stall_cycles / 2.0};

        // Overhead: prologue + 2 body iterations + epilogue, minus the
        // steady-state share of those 2 iterations.
        std::vector<Instr> seq = emit_block_prologue(rb);
        const auto body = emit_kernel_pair(v, rb, cfg_);
        seq.insert(seq.end(), body.begin(), body.end());
        const auto epi = emit_block_epilogue(rb);
        seq.insert(seq.end(), epi.begin(), epi.end());
        const PipelineResult whole = pipe_.run(seq);
        const double total = static_cast<double>(whole.cycles);
        const double ovh = total - 2.0 * per_iter;
        overhead_[vi][si] = ovh > 0.0 ? ovh : 0.0;
        auto clamp0 = [](double x) { return x > 0.0 ? x : 0.0; };
        overhead_pipe_[vi][si] = {
            clamp0(ovh),
            clamp0(static_cast<double>(whole.issued_p0) - ss.issued_p0),
            clamp0(static_cast<double>(whole.issued_p1) - ss.issued_p1),
            clamp0(static_cast<double>(whole.stall_cycles) -
                   ss.stall_cycles)};
      }
    }
  }
}

double KernelCostDb::per_iter_cycles(const KernelVariant& v,
                                     RegBlock rb) const {
  return per_iter_[static_cast<std::size_t>(v.index())]
                  [static_cast<std::size_t>(block_slot(rb))];
}

double KernelCostDb::block_overhead_cycles(const KernelVariant& v,
                                           RegBlock rb) const {
  return overhead_[static_cast<std::size_t>(v.index())]
                  [static_cast<std::size_t>(block_slot(rb))];
}

double KernelCostDb::local_gemm_cycles(const KernelVariant& v, std::int64_t m,
                                       std::int64_t n, std::int64_t k) const {
  if (m <= 0 || n <= 0 || k <= 0) return 0.0;
  const std::int64_t vec_len = v.vec == VecDim::M ? m : n;
  const std::int64_t scal_len = v.vec == VecDim::M ? n : m;
  SWATOP_CHECK(vec_len % cfg_.vector_width == 0)
      << "vectorized dim " << vec_len << " not a multiple of "
      << cfg_.vector_width;

  std::vector<std::pair<int, std::int64_t>> vec_blocks, scal_blocks;
  decompose(vec_len, cfg_.vector_width, vec_blocks);  // mv units of 4
  decompose(scal_len, 1, scal_blocks);                // nb units of 1

  double cycles = 0.0;
  for (const auto& [mv, mcnt] : vec_blocks) {
    for (const auto& [nb, ncnt] : scal_blocks) {
      const RegBlock rb{mv, nb};
      const double per_block =
          block_overhead_cycles(v, rb) +
          static_cast<double>(k) * per_iter_cycles(v, rb);
      cycles += static_cast<double>(mcnt * ncnt) * per_block;
    }
  }
  return cycles;
}

obs::PipeCounters KernelCostDb::local_gemm_pipe(const KernelVariant& v,
                                                std::int64_t m,
                                                std::int64_t n,
                                                std::int64_t k) const {
  obs::PipeCounters out;
  if (m <= 0 || n <= 0 || k <= 0) return out;
  const std::int64_t vec_len = v.vec == VecDim::M ? m : n;
  const std::int64_t scal_len = v.vec == VecDim::M ? n : m;
  SWATOP_CHECK(vec_len % cfg_.vector_width == 0)
      << "vectorized dim " << vec_len << " not a multiple of "
      << cfg_.vector_width;

  std::vector<std::pair<int, std::int64_t>> vec_blocks, scal_blocks;
  decompose(vec_len, cfg_.vector_width, vec_blocks);
  decompose(scal_len, 1, scal_blocks);

  const std::size_t vi = static_cast<std::size_t>(v.index());
  for (const auto& [mv, mcnt] : vec_blocks) {
    for (const auto& [nb, ncnt] : scal_blocks) {
      const std::size_t si =
          static_cast<std::size_t>(block_slot(RegBlock{mv, nb}));
      const SteadyStateStats& it = per_iter_pipe_[vi][si];
      const SteadyStateStats& oh = overhead_pipe_[vi][si];
      const double blocks = static_cast<double>(mcnt * ncnt);
      const double iters = static_cast<double>(k);
      out.issued_p0 += blocks * (oh.issued_p0 + iters * it.issued_p0);
      out.issued_p1 += blocks * (oh.issued_p1 + iters * it.issued_p1);
      out.raw_stall_cycles +=
          blocks * (oh.stall_cycles + iters * it.stall_cycles);
    }
  }
  return out;
}

obs::PipeCounters KernelCostDb::spm_gemm_pipe(const KernelVariant& v,
                                              std::int64_t M, std::int64_t N,
                                              std::int64_t K) const {
  const int R = cfg_.mesh_rows;
  const int C = cfg_.mesh_cols;
  SWATOP_CHECK(M % R == 0 && N % C == 0 && K % R == 0)
      << "spm_gemm dims (" << M << "," << N << "," << K
      << ") not divisible by the mesh";
  obs::PipeCounters panel = local_gemm_pipe(v, M / R, N / C, K / R);
  panel.issued_p0 *= static_cast<double>(R);
  panel.issued_p1 *= static_cast<double>(R);
  panel.raw_stall_cycles *= static_cast<double>(R);
  return panel;
}

double KernelCostDb::spm_gemm_cycles(const KernelVariant& v, std::int64_t M,
                                     std::int64_t N, std::int64_t K) const {
  const int R = cfg_.mesh_rows;
  const int C = cfg_.mesh_cols;
  SWATOP_CHECK(M % R == 0 && N % C == 0 && K % R == 0)
      << "spm_gemm dims (" << M << "," << N << "," << K
      << ") not divisible by the mesh";
  const std::int64_t m = M / R, n = N / C, k = K / R;
  const double panel = local_gemm_cycles(v, m, n, k);
  // One communication-pattern switch per k-panel (Sec. 4.6's "latency to
  // switch register communication pattern") -- spm_gemm_comm_cycles() is
  // exactly that R * latency term.
  return static_cast<double>(R) * panel + spm_gemm_comm_cycles();
}

const KernelCostDb& kernel_cost_db(const sim::SimConfig& cfg) {
  // One database per distinct machine model (the kernel cycle costs depend
  // on the pipeline latencies, vector width and mesh -- not the clock).
  //
  // The registry mutex guards only the key -> slot map; the expensive
  // KernelCostDb construction (it pipeline-simulates all 72 kernel/block
  // combinations) runs under a per-key once_flag. Holding the map lock
  // across construction would serialize every tuner worker thread behind
  // the first use of a *different* machine key; this way concurrent first
  // uses of distinct keys build in parallel, and only threads needing the
  // same key wait for its one construction.
  using Key = std::tuple<int, int, int, int, int, int, int>;
  const Key key{cfg.vmad_latency,  cfg.vload_latency, cfg.vstore_latency,
                cfg.reg_comm_latency, cfg.vector_width, cfg.mesh_rows,
                cfg.mesh_cols};
  struct Slot {
    std::once_flag once;
    std::unique_ptr<KernelCostDb> db;
  };
  static std::mutex mu;
  static std::map<Key, Slot> registry;
  Slot* slot;
  {
    const std::lock_guard<std::mutex> lock(mu);
    slot = &registry[key];  // node-based map: the slot address is stable
  }
  std::call_once(slot->once,
                 [&] { slot->db = std::make_unique<KernelCostDb>(cfg); });
  return *slot->db;
}

}  // namespace swatop::isa
