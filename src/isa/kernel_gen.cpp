#include "isa/kernel_gen.hpp"

#include "common/check.hpp"

namespace swatop::isa {

namespace {

// Register file map (unified ids, mirroring the 32 vector registers of a
// CPE): C block in [0, 16), A vectors in [16, 24) split by parity, B vectors
// in [24, 32) split by parity. Scalar loop counter uses id 40.
constexpr int kCBase = 0;
constexpr int kABase = 16;
constexpr int kBBase = 24;
constexpr int kLoopReg = 40;

int c_reg(int i, int j, int nb) { return kCBase + i * nb + j; }
int a_reg(int parity, int i) { return kABase + parity * 4 + i; }
int b_reg(int parity, int j) { return kBBase + parity * 4 + j; }

/// Append the loads that make the `parity` set of A/B registers for one
/// k-iteration available.
void emit_loads(std::vector<Instr>& out, const KernelVariant& v, RegBlock rb,
                int parity) {
  const Opcode vec_bcast = v.vec == VecDim::M ? Opcode::vlddr : Opcode::vlddc;
  const Opcode scal_bcast = v.vec == VecDim::M ? Opcode::vlddec
                                               : Opcode::vldder;
  // Vectorized operand: mv vector registers.
  for (int i = 0; i < rb.mv; ++i) {
    const int dst =
        v.vec == VecDim::M ? a_reg(parity, i) : b_reg(parity, i);
    if (v.vector_operand_contiguous()) {
      out.push_back({vec_bcast, dst, -1, -1, -1});
    } else {
      // Assemble the vector from four scalar lane inserts, then put it on
      // the bus. The first three inserts write untracked lanes.
      for (int lane = 0; lane < 3; ++lane)
        out.push_back({Opcode::ldse, -1, -1, -1, -1});
      out.push_back({Opcode::ldse, dst, -1, -1, -1});
      out.push_back({vec_bcast, dst, dst, -1, -1});
    }
  }
  // Scalar operand: nb broadcast-extended scalars. A stride-1 walk along K
  // needs no extra address arithmetic; the transposed layout pays one scalar
  // address update per element.
  const bool scalar_contig =
      v.vec == VecDim::M ? v.b_col_major : !v.a_col_major;
  for (int j = 0; j < rb.nb; ++j) {
    const int dst =
        v.vec == VecDim::M ? b_reg(parity, j) : a_reg(parity, j);
    if (!scalar_contig)
      out.push_back({Opcode::addi, kLoopReg + 1 + j, kLoopReg + 1 + j, -1, -1});
    out.push_back({scal_bcast, dst, -1, -1, -1});
  }
}

/// vmads of one k-iteration using the `parity` register set, interleaved by
/// the caller with the other parity's loads.
void emit_vmads(std::vector<Instr>& out, RegBlock rb, int parity) {
  for (int i = 0; i < rb.mv; ++i) {
    for (int j = 0; j < rb.nb; ++j) {
      const int c = c_reg(i, j, rb.nb);
      // vmad c += a * b: c is both source and destination.
      out.push_back({Opcode::vmad, c, a_reg(parity, i), b_reg(parity, j), c});
    }
  }
}

/// Interleave `mem` (P1-heavy) into `arith` (P0-heavy) so the in-order dual
/// issue can pair them: one memory op after each arithmetic op until either
/// runs out.
std::vector<Instr> interleave(const std::vector<Instr>& arith,
                              const std::vector<Instr>& mem) {
  std::vector<Instr> out;
  out.reserve(arith.size() + mem.size());
  std::size_t ai = 0, mi = 0;
  while (ai < arith.size() || mi < mem.size()) {
    if (ai < arith.size()) out.push_back(arith[ai++]);
    if (mi < mem.size()) out.push_back(mem[mi++]);
  }
  return out;
}

void check_block(RegBlock rb) {
  SWATOP_CHECK(rb.mv == 1 || rb.mv == 2 || rb.mv == 4)
      << "bad register block mv=" << rb.mv;
  SWATOP_CHECK(rb.nb == 1 || rb.nb == 2 || rb.nb == 4)
      << "bad register block nb=" << rb.nb;
}

}  // namespace

KernelVariant KernelVariant::from_index(int idx) {
  SWATOP_CHECK(idx >= 0 && idx < 8) << "kernel variant index " << idx;
  KernelVariant v;
  v.a_col_major = (idx & 1) == 0;
  v.b_col_major = (idx & 2) == 0;
  v.vec = (idx & 4) == 0 ? VecDim::M : VecDim::N;
  return v;
}

std::string KernelVariant::name() const {
  std::string s = "gemm_";
  s += a_col_major ? "acm_" : "arm_";
  s += b_col_major ? "bcm_" : "brm_";
  s += vec == VecDim::M ? "vecM" : "vecN";
  return s;
}

std::vector<Instr> emit_kernel_pair(const KernelVariant& v, RegBlock rb,
                                    const sim::SimConfig& cfg) {
  (void)cfg;
  check_block(rb);
  std::vector<Instr> out;
  for (int parity = 0; parity < 2; ++parity) {
    // Loads for the *next* iteration (parity) pair with the vmads consuming
    // the previous iteration's registers (1 - parity): software pipelining.
    std::vector<Instr> loads, vmads;
    emit_loads(loads, v, rb, parity);
    emit_vmads(vmads, rb, 1 - parity);
    auto mixed = interleave(vmads, loads);
    out.insert(out.end(), mixed.begin(), mixed.end());
    // Loop control for this k-iteration.
    out.push_back({Opcode::addi, kLoopReg, kLoopReg, -1, -1});
    out.push_back({Opcode::bne, -1, kLoopReg, -1, -1});
  }
  return out;
}

std::vector<Instr> emit_block_prologue(RegBlock rb) {
  check_block(rb);
  std::vector<Instr> out;
  for (int i = 0; i < rb.mv; ++i)
    for (int j = 0; j < rb.nb; ++j)
      out.push_back({Opcode::vldd, c_reg(i, j, rb.nb), -1, -1, -1});
  return out;
}

std::vector<Instr> emit_block_epilogue(RegBlock rb) {
  check_block(rb);
  std::vector<Instr> out;
  for (int i = 0; i < rb.mv; ++i)
    for (int j = 0; j < rb.nb; ++j)
      out.push_back({Opcode::vstd, -1, c_reg(i, j, rb.nb), -1, -1});
  return out;
}

std::vector<KernelVariant> all_kernel_variants() {
  std::vector<KernelVariant> vs;
  for (int i = 0; i < 8; ++i) vs.push_back(KernelVariant::from_index(i));
  return vs;
}

}  // namespace swatop::isa
