// Memoized micro-kernel costs and the composition rules that turn them into
// whole spm_gemm primitive times.
//
// A local GEMM on one CPE decomposes the vectorized dimension into register
// blocks of 16/8/4 elements and the scalar dimension into blocks of 4/2/1;
// each (variant, block) body is priced once through the pipeline simulator
// and cached. The cluster-level primitive runs 8 SUMMA steps (one per
// k-panel), paying a register-communication pattern-switch latency between
// panels -- the structure behind Eq. (2) of the paper.
#pragma once

#include <array>
#include <cstdint>

#include "isa/kernel_gen.hpp"
#include "isa/pipeline.hpp"
#include "obs/counters.hpp"
#include "sim/config.hpp"

namespace swatop::isa {

class KernelCostDb {
 public:
  explicit KernelCostDb(const sim::SimConfig& cfg);

  /// Steady-state cycles of one k-iteration of a (variant, block) body.
  double per_iter_cycles(const KernelVariant& v, RegBlock rb) const;

  /// Fixed cycles per register block: C load/store plus pipeline fill/drain.
  double block_overhead_cycles(const KernelVariant& v, RegBlock rb) const;

  /// Cycles of a per-CPE local GEMM: (m x n x k) with m,n,k the local tile
  /// dims. The vectorized dimension (m for vec-M) must be a multiple of 4.
  double local_gemm_cycles(const KernelVariant& v, std::int64_t m,
                           std::int64_t n, std::int64_t k) const;

  /// Cycles of the cluster-level spm_gemm with global dims (M x N x K),
  /// distributed 8x8 and executed as 8 broadcast panels.
  double spm_gemm_cycles(const KernelVariant& v, std::int64_t M,
                         std::int64_t N, std::int64_t K) const;

  /// The register-communication share of spm_gemm_cycles: one
  /// pattern-switch latency per k-panel. Kept next to the composition rule
  /// so the attribution layer's split cannot drift from the priced total.
  double spm_gemm_comm_cycles() const {
    return static_cast<double>(cfg_.mesh_rows) *
           static_cast<double>(cfg_.reg_comm_latency);
  }

  /// Per-CPE P0/P1 issue and stall estimate for a local GEMM, composed
  /// from the same pipeline-simulator fits that price it (same block
  /// decomposition, same per-iteration differencing).
  obs::PipeCounters local_gemm_pipe(const KernelVariant& v, std::int64_t m,
                                    std::int64_t n, std::int64_t k) const;

  /// Same for the cluster-level spm_gemm (per CPE: execution is SPMD). The
  /// inter-panel communication-pattern switch is latency, not a pipeline
  /// stall, so it is excluded here.
  obs::PipeCounters spm_gemm_pipe(const KernelVariant& v, std::int64_t M,
                                  std::int64_t N, std::int64_t K) const;

  const sim::SimConfig& config() const { return cfg_; }

 private:
  static int block_slot(RegBlock rb);

  sim::SimConfig cfg_;
  PipelineSim pipe_;
  // 8 variants x 9 (mv in {1,2,4} x nb in {1,2,4}) blocks.
  std::array<std::array<double, 9>, 8> per_iter_{};
  std::array<std::array<double, 9>, 8> overhead_{};
  std::array<std::array<SteadyStateStats, 9>, 8> per_iter_pipe_{};
  std::array<std::array<SteadyStateStats, 9>, 8> overhead_pipe_{};
};

/// Process-wide cost database for the default configuration. Building one is
/// cheap (72 pipeline simulations) but used on hot tuning paths.
const KernelCostDb& kernel_cost_db(const sim::SimConfig& cfg);

}  // namespace swatop::isa
