// A virtual subset of the SW26010 CPE instruction set, sufficient to express
// the GEMM micro-kernels of the paper's appendix.
//
// The CPE issues in order to two pipelines: P0 executes floating-point and
// vector arithmetic, P1 executes memory and register-communication
// operations; integer scalar operations can go to either. The kernel
// generator emits these instructions and the pipeline simulator prices them
// with dual issue and read-after-write hazards -- the mechanism behind the
// paper's "16 vmad in 16 cycles" claim.
#pragma once

#include <cstdint>
#include <string>

#include "sim/config.hpp"

namespace swatop::isa {

enum class Opcode : std::uint8_t {
  // P0: vector arithmetic.
  vmad,  ///< vd = va * vb + vd (4-wide fused multiply-add)
  vadd,  ///< vd = va + vb
  vmul,  ///< vd = va * vb

  // P1: SPM access and register communication.
  vldd,    ///< load a 4-float vector from local SPM
  vstd,    ///< store a 4-float vector to local SPM
  ldse,    ///< load one float from SPM and insert it into a vector lane
  vlddr,   ///< load a vector from SPM and broadcast it on the row bus
  vlddc,   ///< load a vector from SPM and broadcast it on the column bus
  vldder,  ///< load a scalar, extend to a 4-vector, broadcast on the row bus
  vlddec,  ///< load a scalar, extend to a 4-vector, broadcast on the col bus
  getr,    ///< receive a vector from the row bus
  getc,    ///< receive a vector from the column bus

  // Scalar / control, dual-pipe.
  ldi,   ///< load immediate into a scalar register
  addi,  ///< scalar add immediate
  bne,   ///< conditional branch (loop back-edge)
  nop,
};

enum class Pipe : std::uint8_t { P0, P1, Either };

/// Which pipeline an opcode issues to.
Pipe pipe_of(Opcode op);

/// Result latency in cycles (cycles until a consumer may issue).
int latency_of(Opcode op, const sim::SimConfig& cfg);

/// True if the opcode produces a register value that consumers wait on.
bool writes_register(Opcode op);

const char* opcode_name(Opcode op);

/// One instruction. Registers are small integer ids in a unified namespace;
/// `dst < 0` means "no tracked destination" (stores, partial lane inserts).
struct Instr {
  Opcode op = Opcode::nop;
  int dst = -1;
  int src1 = -1;
  int src2 = -1;
  int src3 = -1;

  std::string to_string() const;
};

}  // namespace swatop::isa
