#include "isa/pipeline.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace swatop::isa {

namespace {

constexpr int kMaxRegs = 256;

bool operands_ready(const Instr& in, const std::vector<std::int64_t>& ready,
                    std::int64_t cycle) {
  for (int src : {in.src1, in.src2, in.src3}) {
    if (src >= 0 && ready[static_cast<std::size_t>(src)] > cycle) return false;
  }
  // An accumulator destination (vmad reads dst) is covered by listing dst as
  // a source in the emitted code; no extra handling here.
  return true;
}

}  // namespace

PipelineResult PipelineSim::run(std::span<const Instr> code) const {
  std::vector<std::int64_t> ready(kMaxRegs, 0);
  PipelineResult res;
  std::int64_t cycle = 0;
  std::int64_t last_done = 0;
  std::size_t i = 0;
  while (i < code.size()) {
    bool used_p0 = false;
    bool used_p1 = false;
    bool any = false;
    // Issue in order; up to one instruction per pipe per cycle.
    while (i < code.size()) {
      const Instr& in = code[i];
      SWATOP_CHECK(in.dst < kMaxRegs && in.src1 < kMaxRegs &&
                   in.src2 < kMaxRegs && in.src3 < kMaxRegs)
          << "register id out of range in " << in.to_string();
      if (!operands_ready(in, ready, cycle)) break;
      const Pipe p = pipe_of(in.op);
      bool to_p0;
      if (p == Pipe::P0) {
        if (used_p0) break;
        to_p0 = true;
      } else if (p == Pipe::P1) {
        if (used_p1) break;
        to_p0 = false;
      } else {  // Either: prefer the free pipe.
        if (!used_p1) to_p0 = false;
        else if (!used_p0) to_p0 = true;
        else break;
      }
      (to_p0 ? used_p0 : used_p1) = true;
      (to_p0 ? res.issued_p0 : res.issued_p1) += 1;
      if (writes_register(in.op) && in.dst >= 0) {
        const std::int64_t done = cycle + latency_of(in.op, cfg_);
        ready[static_cast<std::size_t>(in.dst)] = done;
        last_done = std::max(last_done, done);
      } else {
        last_done = std::max(last_done, cycle + 1);
      }
      any = true;
      ++i;
    }
    if (!any) ++res.stall_cycles;
    ++cycle;
  }
  res.cycles = std::max(cycle, last_done);
  return res;
}

double PipelineSim::steady_state_cycles(std::span<const Instr> body, int lo,
                                        int hi) const {
  return steady_state_detail(body, lo, hi).cycles;
}

SteadyStateStats PipelineSim::steady_state_detail(std::span<const Instr> body,
                                                  int lo, int hi) const {
  SWATOP_CHECK(hi > lo && lo >= 1);
  std::vector<Instr> rep_lo, rep_hi;
  for (int r = 0; r < hi; ++r)
    rep_hi.insert(rep_hi.end(), body.begin(), body.end());
  for (int r = 0; r < lo; ++r)
    rep_lo.insert(rep_lo.end(), body.begin(), body.end());
  const auto c_hi = run(rep_hi);
  const auto c_lo = run(rep_lo);
  const double reps = static_cast<double>(hi - lo);
  SteadyStateStats s;
  s.cycles = static_cast<double>(c_hi.cycles - c_lo.cycles) / reps;
  s.issued_p0 = static_cast<double>(c_hi.issued_p0 - c_lo.issued_p0) / reps;
  s.issued_p1 = static_cast<double>(c_hi.issued_p1 - c_lo.issued_p1) / reps;
  s.stall_cycles =
      static_cast<double>(c_hi.stall_cycles - c_lo.stall_cycles) / reps;
  return s;
}

}  // namespace swatop::isa
