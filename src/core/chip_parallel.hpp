// Chip-level data parallelism: run one tuned convolution batch-split across
// the four core groups (how swDNN/swCaffe deploy training kernels, and how
// the paper's chip-level TFLOPS figures relate to this repo's per-CG
// numbers). Each group owns its memory channel, so the groups run
// independently; a NoC barrier closes the kernel.
#pragma once

#include "ops/conv_common.hpp"
#include "sim/chip.hpp"

namespace swatop {

struct ChipRunResult {
  double cycles = 0.0;   ///< slowest group + barrier
  double gflops = 0.0;   ///< full problem vs elapsed, chip-level
  double efficiency = 0.0;  ///< fraction of chip peak
  int groups_used = 0;
  std::vector<double> per_group_cycles;
};

/// Tune the implicit-GEMM convolution for the per-group sub-batch and run
/// it data-parallel over `groups` core groups. Groups with no batch share
/// stay idle (batch 1 cannot use more than one group -- the scaling limit
/// the bench shows).
ChipRunResult run_conv_data_parallel(const ops::ConvShape& shape, int groups,
                                     const sim::SimConfig& cfg);

}  // namespace swatop
