#include "core/chip_parallel.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "ops/implicit_conv.hpp"
#include "tune/tuner.hpp"

namespace swatop {

ChipRunResult run_conv_data_parallel(const ops::ConvShape& shape, int groups,
                                     const sim::SimConfig& cfg) {
  SWATOP_CHECK(groups >= 1 && groups <= 4);
  const sim::Chip chip(cfg, groups);

  // Split the batch as evenly as possible; a group may end up idle.
  const std::int64_t per = ceil_div(shape.batch, groups);
  std::vector<std::int64_t> split;
  std::int64_t left = shape.batch;
  for (int g = 0; g < groups && left > 0; ++g) {
    const std::int64_t b = std::min(per, left);
    split.push_back(b);
    left -= b;
  }

  // Tune once per distinct sub-batch (usually one or two).
  std::map<std::int64_t, double> cycles_for_batch;
  const tune::ModelTuner tuner(cfg);
  for (std::int64_t b : split) {
    if (cycles_for_batch.count(b)) continue;
    ops::ConvShape sub = shape;
    sub.batch = b;
    const ops::ImplicitConvOp op(sub);
    const auto tuned = tuner.tune(op);
    cycles_for_batch[b] = tune::measure_candidate(op, tuned.candidate, cfg);
  }

  ChipRunResult r;
  r.groups_used = static_cast<int>(split.size());
  double slowest = 0.0;
  for (std::int64_t b : split) {
    r.per_group_cycles.push_back(cycles_for_batch[b]);
    slowest = std::max(slowest, cycles_for_batch[b]);
  }
  r.cycles = slowest + (r.groups_used > 1 ? chip.sync_cycles() : 0.0);
  r.gflops = static_cast<double>(shape.flops()) / r.cycles * cfg.clock_ghz;
  r.efficiency = r.gflops / chip.peak_gflops();
  return r;
}

}  // namespace swatop
