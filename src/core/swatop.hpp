// swATOP public API: describe an operator (ops/ provides matmul and the
// three convolution designs, or implement dsl::OperatorDef for your own),
// call Optimizer::optimize, and get back a tuned schedule, the generated C
// source for SW26010, and a handle that runs the schedule on the simulated
// core group.
//
//   swatop::Optimizer opt;
//   swatop::ops::MatmulOp op(512, 512, 512);
//   auto tuned = opt.optimize(op);
//   sim::CoreGroup cg(opt.machine());
//   auto bt = rt::bind_tensors(cg, op);
//   op.fill_inputs(cg, bt, tuned.candidate.strategy);
//   auto result = tuned.run(cg, bt, sim::ExecMode::Functional);
#pragma once

#include <string>

#include "codegen/c_emitter.hpp"
#include "dsl/dsl.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sched/scheduler.hpp"
#include "tune/tuner.hpp"

namespace swatop {

struct SwatopConfig {
  sim::SimConfig machine{};
  bool prefetch = true;  ///< let the optimizer apply double buffering
  /// Run the tuner's top choice through the timing interpreter and report
  /// the measured cycles too.
  bool measure_best = false;
};

struct OptimizedOperator {
  sched::Candidate candidate;
  tune::TunerStats stats;
  double predicted_cycles = 0.0;
  double measured_cycles = 0.0;  ///< 0 unless SwatopConfig::measure_best
  std::string c_source;

  /// Execute the tuned schedule.
  rt::RunResult run(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                    sim::ExecMode mode) const;
};

class Optimizer {
 public:
  explicit Optimizer(SwatopConfig cfg = {});

  const sim::SimConfig& machine() const { return cfg_.machine; }

  /// Tune the operator with the performance-model-based autotuner and
  /// generate its code.
  OptimizedOperator optimize(const dsl::OperatorDef& op) const;

 private:
  SwatopConfig cfg_;
};

}  // namespace swatop
