// swATOP low-level optimizer API: describe an operator (ops/ provides
// matmul and the three convolution designs, or implement dsl::OperatorDef
// for your own), call Optimizer::optimize, and get back a tuned schedule,
// the generated C source for SW26010, and a handle that owns everything
// needed to run it.
//
// NOTE: this header is the implementation layer underneath
// swatop::compile() (graph/compile.hpp), which is the preferred front door
// for new code -- it owns the tuning journal, runs the graph-level fusion
// and SPM-residency passes, and keeps reports glued to the runs that
// produced them. Optimizer / OptimizedOperator::execute /
// optimize_and_run remain supported for callers that need the low-level
// surface (caller-owned core groups, manual tensor binding, per-candidate
// control), and compile() is implemented on top of them.
//
//   swatop::SwatopConfig cfg;
//   swatop::ops::MatmulOp op(512, 512, 512);
//   auto compiled = swatop::compile(op, cfg);     // preferred
//   // or, step by step on this layer:
//   swatop::Optimizer opt(cfg);
//   auto tuned = opt.optimize(op);
//   auto result = tuned.execute(sim::ExecMode::Functional);
//
// The one-call paths own the core group, tensor binding and input fill
// internally; the pre-existing low-level entry points (bind_tensors +
// OptimizedOperator::run on a caller-owned core group) keep working for
// callers that manage memory themselves.
#pragma once

#include <memory>
#include <string>

#include "codegen/c_emitter.hpp"
#include "dsl/dsl.hpp"
#include "obs/recorder.hpp"
#include "rt/bind.hpp"
#include "rt/interpreter.hpp"
#include "sched/scheduler.hpp"
#include "tune/pruner.hpp"
#include "tune/replay.hpp"
#include "tune/schedule_cache.hpp"
#include "tune/tuner.hpp"

namespace swatop {

/// The single configuration surface: machine model, scheduling and tuning
/// knobs, and observability. Every lower-level options struct
/// (sched::SchedulerOptions, the tuner's top-k) is derived from here.
struct SwatopConfig {
  sim::SimConfig machine{};

  bool prefetch = true;  ///< let the optimizer apply double buffering
  /// SPM floats kept free of tile buffers (stack/spill headroom).
  std::int64_t spm_reserve_floats = 512;
  /// Cap on schedule candidates considered (0 = the whole pruned space).
  std::int64_t max_candidates = 0;

  /// 0: pick the cost model's best candidate without measuring (the pure
  /// model-based autotuner). k >= 1: additionally measure the k
  /// model-ranked best through the timing interpreter and keep the
  /// measured winner (Sec. 4.6's "pick best (or top k)").
  int tune_top_k = 0;

  /// Run the chosen candidate through the timing interpreter and report
  /// the measured cycles (implied by tune_top_k >= 1).
  bool measure_best = false;

  /// Worker threads for tuning (lower+optimize sweep and cost-model
  /// ranking): 0 = hardware concurrency, 1 = serial. The pick is identical
  /// at any thread count.
  int tune_threads = 0;

  /// Schedule cache: when enabled, Optimizer::optimize serves a previously
  /// tuned (operator, machine, knobs) from the cache -- rebuilding only the
  /// winning strategy's IR instead of re-enumerating the space -- and banks
  /// every fresh tuning result (to `cache.path` when set, unless
  /// read-only).
  tune::CacheConfig cache{};

  /// Trace-replay measurement fast path: when enabled, every candidate
  /// measurement this configuration triggers (top-k shortlists,
  /// measure_best, cache-hit re-measures, black-box sweeps through the
  /// graph engine) goes through a shared ReplayExecutor -- the first
  /// measurement of a structurally identical candidate records its booking
  /// schedule, later ones replay it bit-identically. `replay.oracle`
  /// re-checks every replay against the interpreter (tests/CI).
  tune::ReplayOptions replay{};

  /// Journal-trained ranking pruner: when enabled, black-box measurement
  /// sweeps cut the candidate set with an online least-squares model once
  /// enough measurements accumulated. Inert until trained, so defaults
  /// leave every tuner argmin unchanged.
  tune::PrunerOptions pruner{};

  /// Observability: off by default (near-zero overhead). When enabled, the
  /// tuner and every execution are profiled into RunResult::profile.
  obs::Options observability{};

  /// Tuning journal: when set (caller-owned, non-owning), every candidate
  /// the tuners consider is appended -- including cache hits, as phase
  /// "cache" -- so one journal shared across operators/layers records the
  /// whole search. See tune/journal.hpp.
  tune::Journal* journal = nullptr;

  /// The scheduler options this configuration implies.
  sched::SchedulerOptions scheduler_options() const {
    sched::SchedulerOptions s;
    s.opt.prefetch = prefetch;
    s.opt.spm_reserve_floats = spm_reserve_floats;
    s.max_candidates = max_candidates;
    s.num_threads = tune_threads;
    return s;
  }

  /// The cache-key knobs this configuration implies (anything that can
  /// change the tuner's pick).
  tune::TunerKnobs tuner_knobs() const {
    tune::TunerKnobs k;
    k.prefetch = prefetch;
    k.spm_reserve_floats = spm_reserve_floats;
    k.max_candidates = max_candidates;
    k.top_k = tune_top_k;
    return k;
  }
};

/// A tuned, code-generated operator. Owns (lazily) the simulated core group
/// and tensor binding needed to run it, so `execute()` is one call; the
/// operator definition passed to Optimizer::optimize must outlive it.
/// Move-only (it owns a core group).
class OptimizedOperator {
 public:
  OptimizedOperator() = default;
  OptimizedOperator(OptimizedOperator&&) = default;
  OptimizedOperator& operator=(OptimizedOperator&&) = default;
  OptimizedOperator(const OptimizedOperator&) = delete;
  OptimizedOperator& operator=(const OptimizedOperator&) = delete;

  sched::Candidate candidate;
  tune::TunerStats stats;
  double predicted_cycles = 0.0;  ///< cost-model estimate of the winner
  double measured_cycles = 0.0;   ///< 0 unless measured during tuning
  bool from_cache = false;  ///< served from the schedule cache (no search)
  std::string c_source;

  /// Execute the tuned schedule on the internally owned core group,
  /// creating it, binding the operator's tensors and filling its inputs on
  /// first use. Repeated calls reuse the core group; output tensors are
  /// re-zeroed before each re-run so an accumulating schedule (C += A*B)
  /// starts from the same state every time -- inputs are read-only to the
  /// generated programs and keep their first-use fill. When the optimizer
  /// was configured with observability enabled, the result's `profile`
  /// carries the counters and trace of this run plus the accumulated
  /// tuning history.
  rt::RunResult execute(sim::ExecMode mode = sim::ExecMode::Functional);

  /// Max |computed - reference| over the outputs of the last execute().
  double check_output();

  /// The internally owned core group / binding (created on demand); for
  /// callers that want to inspect or reuse the memory execute() ran on.
  sim::CoreGroup& core_group();
  const dsl::BoundTensors& tensors();

  /// The operator's useful flops under the tuned strategy; convenience for
  /// RunResult::gflops.
  std::int64_t flops() const;

  /// Low-level entry point: run on a caller-owned core group and binding.
  /// `resident` (optional) pins operand tensors on-chip for the run -- the
  /// graph engine's inter-layer SPM residency (see rt::ResidentSet).
  rt::RunResult run(sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                    sim::ExecMode mode,
                    const rt::ResidentSet* resident = nullptr) const;

 private:
  friend class Optimizer;

  void ensure_bound();

  const dsl::OperatorDef* op_ = nullptr;
  sim::SimConfig machine_{};
  std::shared_ptr<obs::Recorder> recorder_;  ///< null when obs is off
  std::unique_ptr<sim::CoreGroup> cg_;
  dsl::BoundTensors bt_;
  bool executed_ = false;  ///< outputs must be re-zeroed before a re-run
};

class Optimizer {
 public:
  explicit Optimizer(SwatopConfig cfg = {});

  const sim::SimConfig& machine() const { return cfg_.machine; }
  const SwatopConfig& config() const { return cfg_; }

  /// Tune the operator with the performance-model-based autotuner (plus
  /// top-k measurement when configured) and generate its code. The
  /// returned handle keeps a pointer to `op`. With the schedule cache
  /// enabled, a previously tuned (operator, machine, knobs) is served from
  /// the cache: the banked winning strategy is re-lowered directly (the
  /// schedule space is never enumerated) and the handle is marked
  /// `from_cache`; fresh results are banked after tuning.
  OptimizedOperator optimize(const dsl::OperatorDef& op) const;

  /// The schedule cache, when enabled (for inspection / explicit save()).
  tune::ScheduleCache* schedule_cache() const { return cache_.get(); }

  /// The shared trace-replay executor, when enabled (null otherwise).
  /// Callers running their own measurement sweeps (the graph engine's
  /// black-box path, benches) attach it via BlackBoxTuner::set_replay so
  /// one trace cache serves the whole run.
  tune::ReplayExecutor* replay_executor() const { return replay_.get(); }

  /// The shared ranking pruner, when enabled (null otherwise). Trained by
  /// every measurement the optimizer takes; attach to BlackBoxTuner for
  /// sweep pruning.
  tune::RankingPruner* pruner() const { return pruner_.get(); }

 private:
  SwatopConfig cfg_;
  std::shared_ptr<tune::ScheduleCache> cache_;  ///< null when disabled
  std::shared_ptr<tune::ReplayExecutor> replay_;  ///< null when disabled
  std::shared_ptr<tune::RankingPruner> pruner_;   ///< null when disabled
};

/// The whole pipeline in one call: tune, generate code, execute.
/// Prefer swatop::compile(op, cfg) (graph/compile.hpp) in new code: the
/// compiled handle additionally owns the tuning journal and keeps
/// check()/report() attached to the run. This shim remains for existing
/// callers and costs nothing extra.
struct RunOutcome {
  OptimizedOperator optimized;
  rt::RunResult result;
};
RunOutcome optimize_and_run(const SwatopConfig& cfg,
                            const dsl::OperatorDef& op,
                            sim::ExecMode mode = sim::ExecMode::Functional);

}  // namespace swatop
