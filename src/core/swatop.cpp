#include "core/swatop.hpp"

#include <cctype>
#include <chrono>

#include "common/check.hpp"
#include "tune/cost_model.hpp"

namespace swatop {

rt::RunResult OptimizedOperator::run(sim::CoreGroup& cg,
                                     const dsl::BoundTensors& bt,
                                     sim::ExecMode mode,
                                     const rt::ResidentSet* resident) const {
  rt::Interpreter interp(cg, mode);
  if (resident != nullptr && !resident->empty())
    interp.set_resident(resident);
  return interp.run(candidate.program, bt);
}

void OptimizedOperator::ensure_bound() {
  SWATOP_CHECK(op_ != nullptr)
      << "OptimizedOperator::execute on a default-constructed handle; use "
         "Optimizer::optimize";
  if (cg_) return;
  cg_ = std::make_unique<sim::CoreGroup>(machine_);
  if (recorder_) cg_->attach_observer(recorder_.get());
  bt_ = rt::bind_tensors(*cg_, *op_);
  op_->fill_inputs(*cg_, bt_, candidate.strategy);
}

rt::RunResult OptimizedOperator::execute(sim::ExecMode mode) {
  ensure_bound();
  if (executed_ && cg_->mem().materialize()) {
    // Restore the launch-time state (outputs zeroed, as alloc left them;
    // inputs are never written by a program and keep their fill). Today's
    // generated programs zero their SPM accumulator on the first reduction
    // pass and overwrite the output tile on DmaPut, so they happen to be
    // idempotent on preserved memory -- but that is a property of the DMA
    // inference pass, not of execute()'s contract; zeroing here keeps
    // re-runs correct for any accumulating schedule.
    for (const dsl::TensorSpec& t : op_->tensors())
      if (t.is_output) cg_->mem().fill(bt_.at(t.name), t.floats, 0.0f);
  }
  executed_ = true;
  return run(*cg_, bt_, mode);
}

double OptimizedOperator::check_output() {
  ensure_bound();
  return op_->check_output(*cg_, bt_, candidate.strategy);
}

sim::CoreGroup& OptimizedOperator::core_group() {
  ensure_bound();
  return *cg_;
}

const dsl::BoundTensors& OptimizedOperator::tensors() {
  ensure_bound();
  return bt_;
}

std::int64_t OptimizedOperator::flops() const {
  SWATOP_CHECK(op_ != nullptr) << "flops() on a default-constructed handle";
  return op_->flops();
}

Optimizer::Optimizer(SwatopConfig cfg) : cfg_(cfg) {
  if (cfg_.cache.enabled)
    cache_ = std::make_shared<tune::ScheduleCache>(cfg_.cache);
  if (cfg_.replay.enabled)
    replay_ = std::make_shared<tune::ReplayExecutor>(cfg_.replay);
  if (cfg_.pruner.enabled)
    pruner_ = std::make_shared<tune::RankingPruner>(cfg_.pruner);
}

OptimizedOperator Optimizer::optimize(const dsl::OperatorDef& op) const {
  OptimizedOperator out;
  out.op_ = &op;
  out.machine_ = cfg_.machine;
  if (cfg_.observability.enabled)
    out.recorder_ = std::make_shared<obs::Recorder>(cfg_.observability);

  tune::ModelTuner tuner(cfg_.machine);
  if (replay_) tuner.set_replay(replay_.get());
  if (pruner_) tuner.set_pruner(pruner_.get());
  const sched::SchedulerOptions sopts = cfg_.scheduler_options();
  obs::Recorder* rec = out.recorder_.get();

  // One candidate measurement, through the shared trace-replay executor
  // when enabled (bit-identical cycles either way); every measurement also
  // trains the ranking pruner.
  auto measure = [&](const sched::Candidate& c) {
    const double cycles =
        replay_ ? replay_->measure(op, c, cfg_.machine)
                : tune::measure_candidate(op, c, cfg_.machine);
    if (pruner_) pruner_->observe(c.strategy, cycles);
    return cycles;
  };
  // Surface the executor's fast-path traffic for this optimize() call into
  // the recorder's tuning counters (called at every return).
  const tune::ReplayStats replay0 =
      replay_ ? replay_->stats() : tune::ReplayStats{};
  auto flush_replay = [&] {
    if (!replay_ || rec == nullptr) return;
    const tune::ReplayStats r = replay_->stats();
    rec->tune().replay_hits += r.hits - replay0.hits;
    rec->tune().replay_misses += r.misses - replay0.misses;
    rec->tune().replay_fallbacks += r.fallbacks - replay0.fallbacks;
    rec->tune().replay_oracle_checks +=
        r.oracle_checks - replay0.oracle_checks;
  };

  // Cache fast path: a banked winner is rebuilt directly (one lower +
  // optimize, no space enumeration, no ranking).
  const std::string cache_key =
      cache_ ? tune::ScheduleCache::fingerprint(op.name(), cfg_.machine,
                                                cfg_.tuner_knobs())
             : std::string();
  if (cache_) {
    const double w0 = rec ? rec->wall_us() : 0.0;
    if (const auto entry = cache_->lookup(cache_key)) {
      try {
        const auto t0 = std::chrono::steady_clock::now();
        opt::OptOptions oo = sopts.opt;
        oo.prefetch = entry->prefetch;
        out.candidate = tune::build_candidate(op, entry->strategy,
                                              cfg_.machine, oo);
        out.predicted_cycles = entry->predicted_cycles;
        out.measured_cycles = entry->measured_cycles;
        if (cfg_.measure_best && out.measured_cycles == 0.0)
          out.measured_cycles = measure(out.candidate);
        out.from_cache = true;
        out.stats.space_size = op.space().size();
        out.stats.valid_candidates = 1;
        out.stats.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (rec) {
          rec->tune().cache_hits += 1;
          rec->tune().seconds += out.stats.seconds;
          tune::tune_phase_span(rec, "cache hit (rebuild)", w0,
                                rec->wall_us(), 1);
        }
        if (cfg_.journal) {
          tune::JournalEntry e;
          e.op = op.name();
          e.phase = "cache";
          e.strategy = out.candidate.strategy.to_string();
          e.rank = 0;
          if (out.predicted_cycles > 0.0) e.predicted = out.predicted_cycles;
          if (out.measured_cycles > 0.0) e.measured = out.measured_cycles;
          e.chosen = true;
          cfg_.journal->append(std::move(e));
        }
        codegen::EmitOptions eopts;
        eopts.kernel_name = "swatop_" + op.name();
        for (char& c : eopts.kernel_name)
          if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        out.c_source = codegen::emit_c(out.candidate.program, eopts);
        flush_replay();
        return out;
      } catch (const CheckError&) {
        // A stale/corrupt entry that no longer lowers cleanly: fall
        // through to a fresh tuning run (which re-banks the key).
      }
    }
    if (rec) rec->tune().cache_misses += 1;
  }

  if (cfg_.tune_top_k >= 1) {
    tune::Tuned tuned =
        tuner.tune_top_k(op, cfg_.tune_top_k, sopts, rec, cfg_.journal);
    out.measured_cycles = tuned.cycles;
    out.stats = tuned.stats;
    out.candidate = std::move(tuned.candidate);
    // tune_top_k reports measured cycles; recover the model's estimate of
    // the winner so callers can compare.
    const tune::CostModel model(cfg_.machine, tune::gemm_cost_model(cfg_.machine));
    out.predicted_cycles = model.estimate(out.candidate.program).total();
  } else {
    tune::Tuned tuned = tuner.tune(op, sopts, rec, cfg_.journal);
    out.predicted_cycles = tuned.cycles;
    out.stats = tuned.stats;
    out.candidate = std::move(tuned.candidate);
    if (cfg_.measure_best) {
      out.measured_cycles = measure(out.candidate);
      // Record the pick's model-vs-simulator sample (the "model" rows
      // above carry no measurement by construction).
      if (cfg_.journal) {
        tune::JournalEntry e;
        e.op = op.name();
        e.phase = "measure";
        e.strategy = out.candidate.strategy.to_string();
        e.rank = 0;
        e.predicted = out.predicted_cycles;
        e.measured = out.measured_cycles;
        cfg_.journal->append(std::move(e));
      }
    }
  }

  if (cache_) {
    const double w0 = rec ? rec->wall_us() : 0.0;
    tune::CacheEntry e;
    e.strategy = out.candidate.strategy;
    e.prefetch = out.candidate.prefetch;
    e.predicted_cycles = out.predicted_cycles;
    e.measured_cycles = out.measured_cycles;
    cache_->store(cache_key, e);
    if (rec) {
      rec->tune().cache_stores += 1;
      tune::tune_phase_span(rec, "cache store", w0, rec->wall_us());
    }
  }

  codegen::EmitOptions eopts;
  eopts.kernel_name = "swatop_" + op.name();
  for (char& c : eopts.kernel_name)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  out.c_source = codegen::emit_c(out.candidate.program, eopts);
  flush_replay();
  return out;
}

RunOutcome optimize_and_run(const SwatopConfig& cfg,
                            const dsl::OperatorDef& op, sim::ExecMode mode) {
  RunOutcome o;
  o.optimized = Optimizer(cfg).optimize(op);
  o.result = o.optimized.execute(mode);
  return o;
}

}  // namespace swatop
