#include "core/swatop.hpp"

#include <cctype>

namespace swatop {

rt::RunResult OptimizedOperator::run(sim::CoreGroup& cg,
                                     const dsl::BoundTensors& bt,
                                     sim::ExecMode mode) const {
  rt::Interpreter interp(cg, mode);
  return interp.run(candidate.program, bt);
}

Optimizer::Optimizer(SwatopConfig cfg) : cfg_(cfg) {}

OptimizedOperator Optimizer::optimize(const dsl::OperatorDef& op) const {
  const tune::ModelTuner tuner(cfg_.machine);
  sched::SchedulerOptions sopts;
  sopts.opt.prefetch = cfg_.prefetch;
  tune::Tuned tuned = tuner.tune(op, sopts);

  OptimizedOperator out;
  out.predicted_cycles = tuned.cycles;
  out.stats = tuned.stats;
  out.candidate = std::move(tuned.candidate);
  codegen::EmitOptions eopts;
  eopts.kernel_name = "swatop_" + op.name();
  for (char& c : eopts.kernel_name)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  out.c_source = codegen::emit_c(out.candidate.program, eopts);
  if (cfg_.measure_best)
    out.measured_cycles =
        tune::measure_candidate(op, out.candidate, cfg_.machine);
  return out;
}

}  // namespace swatop
