#include "core/swatop.hpp"

#include <cctype>

#include "common/check.hpp"
#include "tune/cost_model.hpp"

namespace swatop {

rt::RunResult OptimizedOperator::run(sim::CoreGroup& cg,
                                     const dsl::BoundTensors& bt,
                                     sim::ExecMode mode) const {
  rt::Interpreter interp(cg, mode);
  return interp.run(candidate.program, bt);
}

void OptimizedOperator::ensure_bound() {
  SWATOP_CHECK(op_ != nullptr)
      << "OptimizedOperator::execute on a default-constructed handle; use "
         "Optimizer::optimize";
  if (cg_) return;
  cg_ = std::make_unique<sim::CoreGroup>(machine_);
  if (recorder_) cg_->attach_observer(recorder_.get());
  bt_ = rt::bind_tensors(*cg_, *op_);
  op_->fill_inputs(*cg_, bt_, candidate.strategy);
}

rt::RunResult OptimizedOperator::execute(sim::ExecMode mode) {
  ensure_bound();
  return run(*cg_, bt_, mode);
}

double OptimizedOperator::check_output() {
  ensure_bound();
  return op_->check_output(*cg_, bt_, candidate.strategy);
}

sim::CoreGroup& OptimizedOperator::core_group() {
  ensure_bound();
  return *cg_;
}

const dsl::BoundTensors& OptimizedOperator::tensors() {
  ensure_bound();
  return bt_;
}

std::int64_t OptimizedOperator::flops() const {
  SWATOP_CHECK(op_ != nullptr) << "flops() on a default-constructed handle";
  return op_->flops();
}

Optimizer::Optimizer(SwatopConfig cfg) : cfg_(cfg) {}

OptimizedOperator Optimizer::optimize(const dsl::OperatorDef& op) const {
  OptimizedOperator out;
  out.op_ = &op;
  out.machine_ = cfg_.machine;
  if (cfg_.observability.enabled)
    out.recorder_ = std::make_shared<obs::Recorder>(cfg_.observability);

  const tune::ModelTuner tuner(cfg_.machine);
  const sched::SchedulerOptions sopts = cfg_.scheduler_options();
  obs::Recorder* rec = out.recorder_.get();
  if (cfg_.tune_top_k >= 1) {
    tune::Tuned tuned = tuner.tune_top_k(op, cfg_.tune_top_k, sopts, rec);
    out.measured_cycles = tuned.cycles;
    out.stats = tuned.stats;
    out.candidate = std::move(tuned.candidate);
    // tune_top_k reports measured cycles; recover the model's estimate of
    // the winner so callers can compare.
    const tune::CostModel model(cfg_.machine, tune::gemm_cost_model(cfg_.machine));
    out.predicted_cycles = model.estimate(out.candidate.program).total();
  } else {
    tune::Tuned tuned = tuner.tune(op, sopts, rec);
    out.predicted_cycles = tuned.cycles;
    out.stats = tuned.stats;
    out.candidate = std::move(tuned.candidate);
    if (cfg_.measure_best)
      out.measured_cycles =
          tune::measure_candidate(op, out.candidate, cfg_.machine);
  }

  codegen::EmitOptions eopts;
  eopts.kernel_name = "swatop_" + op.name();
  for (char& c : eopts.kernel_name)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  out.c_source = codegen::emit_c(out.candidate.program, eopts);
  return out;
}

RunOutcome optimize_and_run(const SwatopConfig& cfg,
                            const dsl::OperatorDef& op, sim::ExecMode mode) {
  RunOutcome o;
  o.optimized = Optimizer(cfg).optimize(op);
  o.result = o.optimized.execute(mode);
  return o;
}

}  // namespace swatop
