# Empty compiler generated dependencies file for bench_chip_scaling.
# This may be replaced when dependencies are built.
