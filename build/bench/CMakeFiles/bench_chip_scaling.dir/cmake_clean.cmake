file(REMOVE_RECURSE
  "CMakeFiles/bench_chip_scaling.dir/ablation_chip_scaling.cpp.o"
  "CMakeFiles/bench_chip_scaling.dir/ablation_chip_scaling.cpp.o.d"
  "CMakeFiles/bench_chip_scaling.dir/bench_util.cpp.o"
  "CMakeFiles/bench_chip_scaling.dir/bench_util.cpp.o.d"
  "bench_chip_scaling"
  "bench_chip_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chip_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
