# Empty compiler generated dependencies file for bench_fig5_implicit_conv.
# This may be replaced when dependencies are built.
