file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_sweep.dir/bench_util.cpp.o"
  "CMakeFiles/bench_tab1_sweep.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_tab1_sweep.dir/tab1_sweep.cpp.o"
  "CMakeFiles/bench_tab1_sweep.dir/tab1_sweep.cpp.o.d"
  "bench_tab1_sweep"
  "bench_tab1_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
