# Empty dependencies file for bench_tab1_sweep.
# This may be replaced when dependencies are built.
