file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_variants.dir/ablation_kernel_variants.cpp.o"
  "CMakeFiles/bench_kernel_variants.dir/ablation_kernel_variants.cpp.o.d"
  "CMakeFiles/bench_kernel_variants.dir/bench_util.cpp.o"
  "CMakeFiles/bench_kernel_variants.dir/bench_util.cpp.o.d"
  "bench_kernel_variants"
  "bench_kernel_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
