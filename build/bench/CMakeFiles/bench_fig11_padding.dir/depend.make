# Empty dependencies file for bench_fig11_padding.
# This may be replaced when dependencies are built.
