file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_padding.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig11_padding.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig11_padding.dir/fig11_padding.cpp.o"
  "CMakeFiles/bench_fig11_padding.dir/fig11_padding.cpp.o.d"
  "bench_fig11_padding"
  "bench_fig11_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
