# Empty dependencies file for bench_fig10_prefetch.
# This may be replaced when dependencies are built.
