file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prefetch.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig10_prefetch.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig10_prefetch.dir/fig10_prefetch.cpp.o"
  "CMakeFiles/bench_fig10_prefetch.dir/fig10_prefetch.cpp.o.d"
  "bench_fig10_prefetch"
  "bench_fig10_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
