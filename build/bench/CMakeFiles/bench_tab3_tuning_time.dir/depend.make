# Empty dependencies file for bench_tab3_tuning_time.
# This may be replaced when dependencies are built.
