file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_tuning_time.dir/bench_util.cpp.o"
  "CMakeFiles/bench_tab3_tuning_time.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_tab3_tuning_time.dir/tab3_tuning_time.cpp.o"
  "CMakeFiles/bench_tab3_tuning_time.dir/tab3_tuning_time.cpp.o.d"
  "bench_tab3_tuning_time"
  "bench_tab3_tuning_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_tuning_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
