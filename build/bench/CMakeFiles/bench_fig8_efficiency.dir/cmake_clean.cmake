file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_efficiency.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig8_efficiency.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig8_efficiency.dir/fig8_efficiency.cpp.o"
  "CMakeFiles/bench_fig8_efficiency.dir/fig8_efficiency.cpp.o.d"
  "bench_fig8_efficiency"
  "bench_fig8_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
