# Empty dependencies file for bench_fig8_efficiency.
# This may be replaced when dependencies are built.
