file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_model_accuracy.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig9_model_accuracy.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig9_model_accuracy.dir/fig9_model_accuracy.cpp.o"
  "CMakeFiles/bench_fig9_model_accuracy.dir/fig9_model_accuracy.cpp.o.d"
  "bench_fig9_model_accuracy"
  "bench_fig9_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
