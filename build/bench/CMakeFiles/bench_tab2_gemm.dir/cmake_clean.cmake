file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_gemm.dir/bench_util.cpp.o"
  "CMakeFiles/bench_tab2_gemm.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_tab2_gemm.dir/tab2_gemm.cpp.o"
  "CMakeFiles/bench_tab2_gemm.dir/tab2_gemm.cpp.o.d"
  "bench_tab2_gemm"
  "bench_tab2_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
