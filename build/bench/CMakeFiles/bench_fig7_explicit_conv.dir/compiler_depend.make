# Empty compiler generated dependencies file for bench_fig7_explicit_conv.
# This may be replaced when dependencies are built.
