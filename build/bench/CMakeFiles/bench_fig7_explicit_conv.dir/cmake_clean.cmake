file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_explicit_conv.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig7_explicit_conv.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig7_explicit_conv.dir/fig7_explicit_conv.cpp.o"
  "CMakeFiles/bench_fig7_explicit_conv.dir/fig7_explicit_conv.cpp.o.d"
  "bench_fig7_explicit_conv"
  "bench_fig7_explicit_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_explicit_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
