# Empty compiler generated dependencies file for bench_dma_modes.
# This may be replaced when dependencies are built.
