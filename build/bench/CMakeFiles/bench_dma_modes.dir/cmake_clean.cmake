file(REMOVE_RECURSE
  "CMakeFiles/bench_dma_modes.dir/ablation_dma_modes.cpp.o"
  "CMakeFiles/bench_dma_modes.dir/ablation_dma_modes.cpp.o.d"
  "CMakeFiles/bench_dma_modes.dir/bench_util.cpp.o"
  "CMakeFiles/bench_dma_modes.dir/bench_util.cpp.o.d"
  "bench_dma_modes"
  "bench_dma_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
