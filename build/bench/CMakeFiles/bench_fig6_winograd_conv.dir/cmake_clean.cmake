file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_winograd_conv.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig6_winograd_conv.dir/bench_util.cpp.o.d"
  "CMakeFiles/bench_fig6_winograd_conv.dir/fig6_winograd_conv.cpp.o"
  "CMakeFiles/bench_fig6_winograd_conv.dir/fig6_winograd_conv.cpp.o.d"
  "bench_fig6_winograd_conv"
  "bench_fig6_winograd_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_winograd_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
