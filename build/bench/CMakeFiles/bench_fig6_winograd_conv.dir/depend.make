# Empty dependencies file for bench_fig6_winograd_conv.
# This may be replaced when dependencies are built.
