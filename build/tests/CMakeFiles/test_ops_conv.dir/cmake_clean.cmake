file(REMOVE_RECURSE
  "CMakeFiles/test_ops_conv.dir/test_ops_conv.cpp.o"
  "CMakeFiles/test_ops_conv.dir/test_ops_conv.cpp.o.d"
  "test_ops_conv"
  "test_ops_conv.pdb"
  "test_ops_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
