# Empty compiler generated dependencies file for test_ops_conv.
# This may be replaced when dependencies are built.
