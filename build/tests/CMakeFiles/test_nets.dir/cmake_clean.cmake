file(REMOVE_RECURSE
  "CMakeFiles/test_nets.dir/test_nets.cpp.o"
  "CMakeFiles/test_nets.dir/test_nets.cpp.o.d"
  "test_nets"
  "test_nets.pdb"
  "test_nets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
