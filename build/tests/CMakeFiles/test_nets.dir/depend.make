# Empty dependencies file for test_nets.
# This may be replaced when dependencies are built.
