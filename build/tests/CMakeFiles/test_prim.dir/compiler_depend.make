# Empty compiler generated dependencies file for test_prim.
# This may be replaced when dependencies are built.
