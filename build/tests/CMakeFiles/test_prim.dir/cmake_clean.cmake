file(REMOVE_RECURSE
  "CMakeFiles/test_prim.dir/test_prim.cpp.o"
  "CMakeFiles/test_prim.dir/test_prim.cpp.o.d"
  "test_prim"
  "test_prim.pdb"
  "test_prim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
