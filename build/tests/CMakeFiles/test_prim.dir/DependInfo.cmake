
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_prim.cpp" "tests/CMakeFiles/test_prim.dir/test_prim.cpp.o" "gcc" "tests/CMakeFiles/test_prim.dir/test_prim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
