file(REMOVE_RECURSE
  "CMakeFiles/test_ops_matmul.dir/test_ops_matmul.cpp.o"
  "CMakeFiles/test_ops_matmul.dir/test_ops_matmul.cpp.o.d"
  "test_ops_matmul"
  "test_ops_matmul.pdb"
  "test_ops_matmul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
