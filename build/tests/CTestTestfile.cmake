# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_prim[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_tune[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_ops_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_ops_conv[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_nets[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
