# Empty dependencies file for tune_conv_layer.
# This may be replaced when dependencies are built.
