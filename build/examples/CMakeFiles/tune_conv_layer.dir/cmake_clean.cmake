file(REMOVE_RECURSE
  "CMakeFiles/tune_conv_layer.dir/tune_conv_layer.cpp.o"
  "CMakeFiles/tune_conv_layer.dir/tune_conv_layer.cpp.o.d"
  "tune_conv_layer"
  "tune_conv_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_conv_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
