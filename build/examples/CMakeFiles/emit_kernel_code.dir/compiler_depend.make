# Empty compiler generated dependencies file for emit_kernel_code.
# This may be replaced when dependencies are built.
