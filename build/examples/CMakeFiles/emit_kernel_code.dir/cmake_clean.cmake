file(REMOVE_RECURSE
  "CMakeFiles/emit_kernel_code.dir/emit_kernel_code.cpp.o"
  "CMakeFiles/emit_kernel_code.dir/emit_kernel_code.cpp.o.d"
  "emit_kernel_code"
  "emit_kernel_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_kernel_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
