# Empty dependencies file for optimize_network.
# This may be replaced when dependencies are built.
