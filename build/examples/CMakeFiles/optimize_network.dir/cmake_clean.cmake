file(REMOVE_RECURSE
  "CMakeFiles/optimize_network.dir/optimize_network.cpp.o"
  "CMakeFiles/optimize_network.dir/optimize_network.cpp.o.d"
  "optimize_network"
  "optimize_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
