# Empty compiler generated dependencies file for optimize_network.
# This may be replaced when dependencies are built.
