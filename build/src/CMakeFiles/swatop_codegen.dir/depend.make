# Empty dependencies file for swatop_codegen.
# This may be replaced when dependencies are built.
