file(REMOVE_RECURSE
  "libswatop_codegen.a"
)
