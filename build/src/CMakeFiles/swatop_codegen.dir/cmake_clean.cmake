file(REMOVE_RECURSE
  "CMakeFiles/swatop_codegen.dir/codegen/c_emitter.cpp.o"
  "CMakeFiles/swatop_codegen.dir/codegen/c_emitter.cpp.o.d"
  "libswatop_codegen.a"
  "libswatop_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
