file(REMOVE_RECURSE
  "libswatop_baseline.a"
)
