# Empty compiler generated dependencies file for swatop_baseline.
# This may be replaced when dependencies are built.
