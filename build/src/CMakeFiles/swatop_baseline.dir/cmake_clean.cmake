file(REMOVE_RECURSE
  "CMakeFiles/swatop_baseline.dir/baseline/manual_explicit.cpp.o"
  "CMakeFiles/swatop_baseline.dir/baseline/manual_explicit.cpp.o.d"
  "CMakeFiles/swatop_baseline.dir/baseline/manual_winograd.cpp.o"
  "CMakeFiles/swatop_baseline.dir/baseline/manual_winograd.cpp.o.d"
  "CMakeFiles/swatop_baseline.dir/baseline/swdnn_conv.cpp.o"
  "CMakeFiles/swatop_baseline.dir/baseline/swdnn_conv.cpp.o.d"
  "CMakeFiles/swatop_baseline.dir/baseline/xmath_gemm.cpp.o"
  "CMakeFiles/swatop_baseline.dir/baseline/xmath_gemm.cpp.o.d"
  "libswatop_baseline.a"
  "libswatop_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
