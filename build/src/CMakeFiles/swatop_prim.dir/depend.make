# Empty dependencies file for swatop_prim.
# This may be replaced when dependencies are built.
