file(REMOVE_RECURSE
  "libswatop_prim.a"
)
