file(REMOVE_RECURSE
  "CMakeFiles/swatop_prim.dir/prim/dma_primitive.cpp.o"
  "CMakeFiles/swatop_prim.dir/prim/dma_primitive.cpp.o.d"
  "CMakeFiles/swatop_prim.dir/prim/gemm_primitive.cpp.o"
  "CMakeFiles/swatop_prim.dir/prim/gemm_primitive.cpp.o.d"
  "CMakeFiles/swatop_prim.dir/prim/pack.cpp.o"
  "CMakeFiles/swatop_prim.dir/prim/pack.cpp.o.d"
  "libswatop_prim.a"
  "libswatop_prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
