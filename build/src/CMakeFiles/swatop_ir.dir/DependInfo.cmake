
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/CMakeFiles/swatop_ir.dir/ir/analysis.cpp.o" "gcc" "src/CMakeFiles/swatop_ir.dir/ir/analysis.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/swatop_ir.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/swatop_ir.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/mutator.cpp" "src/CMakeFiles/swatop_ir.dir/ir/mutator.cpp.o" "gcc" "src/CMakeFiles/swatop_ir.dir/ir/mutator.cpp.o.d"
  "/root/repo/src/ir/node.cpp" "src/CMakeFiles/swatop_ir.dir/ir/node.cpp.o" "gcc" "src/CMakeFiles/swatop_ir.dir/ir/node.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/swatop_ir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/swatop_ir.dir/ir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
