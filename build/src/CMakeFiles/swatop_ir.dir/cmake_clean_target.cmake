file(REMOVE_RECURSE
  "libswatop_ir.a"
)
