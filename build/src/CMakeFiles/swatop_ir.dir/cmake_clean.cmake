file(REMOVE_RECURSE
  "CMakeFiles/swatop_ir.dir/ir/analysis.cpp.o"
  "CMakeFiles/swatop_ir.dir/ir/analysis.cpp.o.d"
  "CMakeFiles/swatop_ir.dir/ir/expr.cpp.o"
  "CMakeFiles/swatop_ir.dir/ir/expr.cpp.o.d"
  "CMakeFiles/swatop_ir.dir/ir/mutator.cpp.o"
  "CMakeFiles/swatop_ir.dir/ir/mutator.cpp.o.d"
  "CMakeFiles/swatop_ir.dir/ir/node.cpp.o"
  "CMakeFiles/swatop_ir.dir/ir/node.cpp.o.d"
  "CMakeFiles/swatop_ir.dir/ir/printer.cpp.o"
  "CMakeFiles/swatop_ir.dir/ir/printer.cpp.o.d"
  "libswatop_ir.a"
  "libswatop_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
