# Empty compiler generated dependencies file for swatop_ir.
# This may be replaced when dependencies are built.
