file(REMOVE_RECURSE
  "libswatop_rt.a"
)
