file(REMOVE_RECURSE
  "CMakeFiles/swatop_rt.dir/rt/bind.cpp.o"
  "CMakeFiles/swatop_rt.dir/rt/bind.cpp.o.d"
  "CMakeFiles/swatop_rt.dir/rt/dma_expand.cpp.o"
  "CMakeFiles/swatop_rt.dir/rt/dma_expand.cpp.o.d"
  "CMakeFiles/swatop_rt.dir/rt/expr_eval.cpp.o"
  "CMakeFiles/swatop_rt.dir/rt/expr_eval.cpp.o.d"
  "CMakeFiles/swatop_rt.dir/rt/interpreter.cpp.o"
  "CMakeFiles/swatop_rt.dir/rt/interpreter.cpp.o.d"
  "libswatop_rt.a"
  "libswatop_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
