# Empty dependencies file for swatop_rt.
# This may be replaced when dependencies are built.
