file(REMOVE_RECURSE
  "libswatop_nets.a"
)
