# Empty compiler generated dependencies file for swatop_nets.
# This may be replaced when dependencies are built.
