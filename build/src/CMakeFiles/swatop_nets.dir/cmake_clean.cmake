file(REMOVE_RECURSE
  "CMakeFiles/swatop_nets.dir/nets/nets.cpp.o"
  "CMakeFiles/swatop_nets.dir/nets/nets.cpp.o.d"
  "libswatop_nets.a"
  "libswatop_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
