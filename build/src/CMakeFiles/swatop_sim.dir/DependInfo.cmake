
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chip.cpp" "src/CMakeFiles/swatop_sim.dir/sim/chip.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/chip.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/swatop_sim.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/core_group.cpp" "src/CMakeFiles/swatop_sim.dir/sim/core_group.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/core_group.cpp.o.d"
  "/root/repo/src/sim/dma.cpp" "src/CMakeFiles/swatop_sim.dir/sim/dma.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/dma.cpp.o.d"
  "/root/repo/src/sim/main_memory.cpp" "src/CMakeFiles/swatop_sim.dir/sim/main_memory.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/main_memory.cpp.o.d"
  "/root/repo/src/sim/reg_comm.cpp" "src/CMakeFiles/swatop_sim.dir/sim/reg_comm.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/reg_comm.cpp.o.d"
  "/root/repo/src/sim/spm.cpp" "src/CMakeFiles/swatop_sim.dir/sim/spm.cpp.o" "gcc" "src/CMakeFiles/swatop_sim.dir/sim/spm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
