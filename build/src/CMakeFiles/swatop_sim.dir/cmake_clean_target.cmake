file(REMOVE_RECURSE
  "libswatop_sim.a"
)
