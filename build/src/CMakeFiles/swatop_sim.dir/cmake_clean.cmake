file(REMOVE_RECURSE
  "CMakeFiles/swatop_sim.dir/sim/chip.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/chip.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/cluster.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/core_group.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/core_group.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/dma.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/dma.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/main_memory.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/main_memory.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/reg_comm.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/reg_comm.cpp.o.d"
  "CMakeFiles/swatop_sim.dir/sim/spm.cpp.o"
  "CMakeFiles/swatop_sim.dir/sim/spm.cpp.o.d"
  "libswatop_sim.a"
  "libswatop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
