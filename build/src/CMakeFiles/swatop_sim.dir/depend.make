# Empty dependencies file for swatop_sim.
# This may be replaced when dependencies are built.
