# Empty dependencies file for swatop_isa.
# This may be replaced when dependencies are built.
