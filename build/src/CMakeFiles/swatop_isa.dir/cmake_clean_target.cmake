file(REMOVE_RECURSE
  "libswatop_isa.a"
)
