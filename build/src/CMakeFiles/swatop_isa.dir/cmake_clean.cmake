file(REMOVE_RECURSE
  "CMakeFiles/swatop_isa.dir/isa/instr.cpp.o"
  "CMakeFiles/swatop_isa.dir/isa/instr.cpp.o.d"
  "CMakeFiles/swatop_isa.dir/isa/kernel_cache.cpp.o"
  "CMakeFiles/swatop_isa.dir/isa/kernel_cache.cpp.o.d"
  "CMakeFiles/swatop_isa.dir/isa/kernel_gen.cpp.o"
  "CMakeFiles/swatop_isa.dir/isa/kernel_gen.cpp.o.d"
  "CMakeFiles/swatop_isa.dir/isa/pipeline.cpp.o"
  "CMakeFiles/swatop_isa.dir/isa/pipeline.cpp.o.d"
  "libswatop_isa.a"
  "libswatop_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
