
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/instr.cpp" "src/CMakeFiles/swatop_isa.dir/isa/instr.cpp.o" "gcc" "src/CMakeFiles/swatop_isa.dir/isa/instr.cpp.o.d"
  "/root/repo/src/isa/kernel_cache.cpp" "src/CMakeFiles/swatop_isa.dir/isa/kernel_cache.cpp.o" "gcc" "src/CMakeFiles/swatop_isa.dir/isa/kernel_cache.cpp.o.d"
  "/root/repo/src/isa/kernel_gen.cpp" "src/CMakeFiles/swatop_isa.dir/isa/kernel_gen.cpp.o" "gcc" "src/CMakeFiles/swatop_isa.dir/isa/kernel_gen.cpp.o.d"
  "/root/repo/src/isa/pipeline.cpp" "src/CMakeFiles/swatop_isa.dir/isa/pipeline.cpp.o" "gcc" "src/CMakeFiles/swatop_isa.dir/isa/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
