# Empty dependencies file for swatop_ops.
# This may be replaced when dependencies are built.
