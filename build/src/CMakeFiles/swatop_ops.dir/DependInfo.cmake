
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/conv_backward.cpp" "src/CMakeFiles/swatop_ops.dir/ops/conv_backward.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/conv_backward.cpp.o.d"
  "/root/repo/src/ops/explicit_conv.cpp" "src/CMakeFiles/swatop_ops.dir/ops/explicit_conv.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/explicit_conv.cpp.o.d"
  "/root/repo/src/ops/implicit_conv.cpp" "src/CMakeFiles/swatop_ops.dir/ops/implicit_conv.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/implicit_conv.cpp.o.d"
  "/root/repo/src/ops/matmul.cpp" "src/CMakeFiles/swatop_ops.dir/ops/matmul.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/matmul.cpp.o.d"
  "/root/repo/src/ops/reference.cpp" "src/CMakeFiles/swatop_ops.dir/ops/reference.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/reference.cpp.o.d"
  "/root/repo/src/ops/tensor.cpp" "src/CMakeFiles/swatop_ops.dir/ops/tensor.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/tensor.cpp.o.d"
  "/root/repo/src/ops/winograd.cpp" "src/CMakeFiles/swatop_ops.dir/ops/winograd.cpp.o" "gcc" "src/CMakeFiles/swatop_ops.dir/ops/winograd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
