file(REMOVE_RECURSE
  "CMakeFiles/swatop_ops.dir/ops/conv_backward.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/conv_backward.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/explicit_conv.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/explicit_conv.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/implicit_conv.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/implicit_conv.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/matmul.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/matmul.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/reference.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/reference.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/tensor.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/tensor.cpp.o.d"
  "CMakeFiles/swatop_ops.dir/ops/winograd.cpp.o"
  "CMakeFiles/swatop_ops.dir/ops/winograd.cpp.o.d"
  "libswatop_ops.a"
  "libswatop_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
