file(REMOVE_RECURSE
  "libswatop_ops.a"
)
