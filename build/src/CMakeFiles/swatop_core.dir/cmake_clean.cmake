file(REMOVE_RECURSE
  "CMakeFiles/swatop_core.dir/core/chip_parallel.cpp.o"
  "CMakeFiles/swatop_core.dir/core/chip_parallel.cpp.o.d"
  "CMakeFiles/swatop_core.dir/core/swatop.cpp.o"
  "CMakeFiles/swatop_core.dir/core/swatop.cpp.o.d"
  "libswatop_core.a"
  "libswatop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
