file(REMOVE_RECURSE
  "libswatop_core.a"
)
