# Empty dependencies file for swatop_core.
# This may be replaced when dependencies are built.
