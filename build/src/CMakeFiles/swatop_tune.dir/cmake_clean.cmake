file(REMOVE_RECURSE
  "CMakeFiles/swatop_tune.dir/tune/cost_model.cpp.o"
  "CMakeFiles/swatop_tune.dir/tune/cost_model.cpp.o.d"
  "CMakeFiles/swatop_tune.dir/tune/gemm_model.cpp.o"
  "CMakeFiles/swatop_tune.dir/tune/gemm_model.cpp.o.d"
  "CMakeFiles/swatop_tune.dir/tune/tuner.cpp.o"
  "CMakeFiles/swatop_tune.dir/tune/tuner.cpp.o.d"
  "libswatop_tune.a"
  "libswatop_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
