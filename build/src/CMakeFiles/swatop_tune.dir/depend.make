# Empty dependencies file for swatop_tune.
# This may be replaced when dependencies are built.
