file(REMOVE_RECURSE
  "libswatop_tune.a"
)
