file(REMOVE_RECURSE
  "libswatop_sched.a"
)
