# Empty compiler generated dependencies file for swatop_sched.
# This may be replaced when dependencies are built.
