file(REMOVE_RECURSE
  "CMakeFiles/swatop_sched.dir/sched/lower.cpp.o"
  "CMakeFiles/swatop_sched.dir/sched/lower.cpp.o.d"
  "CMakeFiles/swatop_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/swatop_sched.dir/sched/scheduler.cpp.o.d"
  "libswatop_sched.a"
  "libswatop_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
