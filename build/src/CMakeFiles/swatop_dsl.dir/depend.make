# Empty dependencies file for swatop_dsl.
# This may be replaced when dependencies are built.
