file(REMOVE_RECURSE
  "CMakeFiles/swatop_dsl.dir/dsl/builder.cpp.o"
  "CMakeFiles/swatop_dsl.dir/dsl/builder.cpp.o.d"
  "CMakeFiles/swatop_dsl.dir/dsl/dsl.cpp.o"
  "CMakeFiles/swatop_dsl.dir/dsl/dsl.cpp.o.d"
  "libswatop_dsl.a"
  "libswatop_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
