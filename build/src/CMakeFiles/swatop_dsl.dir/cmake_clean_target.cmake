file(REMOVE_RECURSE
  "libswatop_dsl.a"
)
