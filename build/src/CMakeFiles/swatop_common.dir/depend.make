# Empty dependencies file for swatop_common.
# This may be replaced when dependencies are built.
