file(REMOVE_RECURSE
  "CMakeFiles/swatop_common.dir/common/least_squares.cpp.o"
  "CMakeFiles/swatop_common.dir/common/least_squares.cpp.o.d"
  "CMakeFiles/swatop_common.dir/common/math_util.cpp.o"
  "CMakeFiles/swatop_common.dir/common/math_util.cpp.o.d"
  "libswatop_common.a"
  "libswatop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
