file(REMOVE_RECURSE
  "libswatop_common.a"
)
