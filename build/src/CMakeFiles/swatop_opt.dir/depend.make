# Empty dependencies file for swatop_opt.
# This may be replaced when dependencies are built.
