
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/boundary.cpp" "src/CMakeFiles/swatop_opt.dir/opt/boundary.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/boundary.cpp.o.d"
  "/root/repo/src/opt/coalesce.cpp" "src/CMakeFiles/swatop_opt.dir/opt/coalesce.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/coalesce.cpp.o.d"
  "/root/repo/src/opt/dma_inference.cpp" "src/CMakeFiles/swatop_opt.dir/opt/dma_inference.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/dma_inference.cpp.o.d"
  "/root/repo/src/opt/double_buffer.cpp" "src/CMakeFiles/swatop_opt.dir/opt/double_buffer.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/double_buffer.cpp.o.d"
  "/root/repo/src/opt/pass_manager.cpp" "src/CMakeFiles/swatop_opt.dir/opt/pass_manager.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/pass_manager.cpp.o.d"
  "/root/repo/src/opt/simplify.cpp" "src/CMakeFiles/swatop_opt.dir/opt/simplify.cpp.o" "gcc" "src/CMakeFiles/swatop_opt.dir/opt/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swatop_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swatop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
