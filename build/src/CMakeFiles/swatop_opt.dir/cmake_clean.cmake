file(REMOVE_RECURSE
  "CMakeFiles/swatop_opt.dir/opt/boundary.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/boundary.cpp.o.d"
  "CMakeFiles/swatop_opt.dir/opt/coalesce.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/coalesce.cpp.o.d"
  "CMakeFiles/swatop_opt.dir/opt/dma_inference.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/dma_inference.cpp.o.d"
  "CMakeFiles/swatop_opt.dir/opt/double_buffer.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/double_buffer.cpp.o.d"
  "CMakeFiles/swatop_opt.dir/opt/pass_manager.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/pass_manager.cpp.o.d"
  "CMakeFiles/swatop_opt.dir/opt/simplify.cpp.o"
  "CMakeFiles/swatop_opt.dir/opt/simplify.cpp.o.d"
  "libswatop_opt.a"
  "libswatop_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swatop_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
