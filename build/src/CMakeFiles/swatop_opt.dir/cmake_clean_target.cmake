file(REMOVE_RECURSE
  "libswatop_opt.a"
)
