// Show swATOP as an offline compiler: tune an operator and print the
// generated SW26010 C source (athread-style SPMD kernel with DMA and
// spm_gemm primitive calls) that would be handed to the sw5 toolchain.
//
//   $ ./emit_kernel_code [M N K]
#include <cstdio>
#include <cstdlib>

#include "graph/compile.hpp"
#include "ops/matmul.hpp"

int main(int argc, char** argv) {
  using namespace swatop;
  const std::int64_t M = argc > 1 ? std::atoll(argv[1]) : 200;
  const std::int64_t N = argc > 2 ? std::atoll(argv[2]) : 200;
  const std::int64_t K = argc > 3 ? std::atoll(argv[3]) : 200;

  ops::MatmulOp op(M, N, K);
  SwatopConfig cfg;  // default machine; the single configuration surface
  const CompiledOp compiled = compile(op, cfg);
  const OptimizedOperator& tuned = compiled.handle();

  std::printf("// strategy: %s\n",
              tuned.candidate.strategy.to_string().c_str());
  std::printf("// predicted cycles: %.0f\n\n", tuned.predicted_cycles);
  std::fputs(tuned.c_source.c_str(), stdout);
  return 0;
}
