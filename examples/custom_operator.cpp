// Define your own operator through the DSL builder -- no subclassing.
//
// The operator here is a scaled residual GEMM, C = A x B computed tile by
// tile (the schedule seed), with split factors, loop orders and kernel
// variants as the schedule space -- exactly the description-plus-space
// split of the paper's Fig. 4. The tuner, runtime and code generator all
// accept the built operator like the library-provided ones.
//
//   $ ./custom_operator [M N K]
#include <cstdio>
#include <cstdlib>

#include "graph/compile.hpp"
#include "dsl/builder.hpp"
#include "isa/kernel_gen.hpp"
#include "opt/boundary.hpp"
#include "ops/reference.hpp"
#include "ops/tensor.hpp"
#include "sched/lower.hpp"

using namespace swatop;

int main(int argc, char** argv) {
  const std::int64_t M = argc > 1 ? std::atoll(argv[1]) : 120;
  const std::int64_t N = argc > 2 ? std::atoll(argv[2]) : 80;
  const std::int64_t K = argc > 3 ? std::atoll(argv[3]) : 48;

  auto op =
      dsl::GemmOpBuilder("custom_gemm")
          .tensor("A", M * K)
          .tensor("B", K * N)
          .tensor("C", M * N, /*is_output=*/true)
          .factor({"Tm", {32, 64}})
          .factor({"Tn", {32, 64}})
          .factor({"Tk", {16, 32}})
          .choice({"order", {"mnk", "nmk"}})
          .choice({"variant", {"0", "2", "6"}})
          .flops(2 * M * N * K)
          .lower_with([=](const dsl::Strategy& s) -> ir::StmtPtr {
            const std::int64_t Tm = s.factor("Tm");
            const std::int64_t Tn = s.factor("Tn");
            const std::int64_t Tk = s.factor("Tk");
            const opt::TiledDim dm = opt::make_tiled("m_o", M, Tm);
            const opt::TiledDim dn = opt::make_tiled("n_o", N, Tn);
            const opt::TiledDim dk = opt::make_tiled("k_o", K, Tk);

            ir::GemmAttrs g;
            g.variant = std::stoi(s.choice("variant"));
            g.M = ir::cst(Tm);
            g.N = ir::cst(Tn);
            g.K = ir::cst(Tk);
            g.a = {"A", ir::add(dm.base(), ir::mul(dk.base(), ir::cst(M))),
                   1, M, dm.valid(), dk.valid()};
            g.b = {"B", ir::add(dk.base(), ir::mul(dn.base(), ir::cst(K))),
                   1, K, dk.valid(), dn.valid()};
            g.c = {"C", ir::add(dm.base(), ir::mul(dn.base(), ir::cst(M))),
                   1, M, dm.valid(), dn.valid()};

            const std::vector<std::pair<char, sched::LoopSpec>> dims = {
                {'m', {"m_o", ir::cst(dm.count), false}},
                {'n', {"n_o", ir::cst(dn.count), false}},
                {'k', {"k_o", ir::cst(dk.count), true}},
            };
            return sched::build_nest(
                sched::order_loops(s.choice("order"), dims),
                ir::make_gemm(g));
          })
          .fill_with([=](sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                         const dsl::Strategy&) {
            ops::Prng rng(1);
            for (const char* t : {"A", "B"}) {
              auto v = cg.mem().view(bt.at(t), t[0] == 'A' ? M * K : K * N);
              for (float& x : v) x = rng.next();
            }
          })
          .check_with([=](sim::CoreGroup& cg, const dsl::BoundTensors& bt,
                          const dsl::Strategy&) {
            std::vector<float> a(static_cast<std::size_t>(M * K));
            std::vector<float> b(static_cast<std::size_t>(K * N));
            std::vector<float> ref(static_cast<std::size_t>(M * N));
            cg.mem().copy_out(bt.at("A"), a);
            cg.mem().copy_out(bt.at("B"), b);
            ops::reference_gemm(a.data(), b.data(), ref.data(), M, N, K);
            auto got = cg.mem().view(bt.at("C"), M * N);
            return ops::max_abs_diff(got.data(), ref.data(), M * N);
          })
          .build();

  CompiledOp compiled = compile(*op);
  std::printf("custom operator tuned: %s\n",
              compiled.handle().candidate.strategy.to_string().c_str());

  // The compiled handle owns the core group, binding and input fill.
  const auto r = compiled.run();
  const double err = compiled.check();
  std::printf("ran in %.0f simulated cycles, max |err| = %.2e %s\n",
              r.cycles, err, err < 2e-3 ? "(OK)" : "(FAILED)");
  return err < 2e-3 ? 0 : 1;
}
