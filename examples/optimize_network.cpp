// swATOP as a whole-network compiler: hand the network to
// swatop::compile(), which fuses conv epilogues (bias / residual-add /
// relu / pad folded into the conv store path), pins qualifying
// inter-layer tensors in SPM, deduplicates the distinct (shape, epilogue)
// keys, tunes each once into the persistent schedule cache, plans the
// activation arena and executes end-to-end on the simulated chip with the
// batch split across core groups.
//
//   $ ./optimize_network [vgg16|resnet|yolo] [batch] [groups]
//
// The second run -- and any later process pointed at the same cache file --
// serves every schedule from the cache instead of re-tuning.
#include <cstdio>
#include <string>

#include "graph/build.hpp"
#include "graph/compile.hpp"

using namespace swatop;

int main(int argc, char** argv) {
  const std::string net = argc > 1 ? argv[1] : "vgg16";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 32;
  const int groups = argc > 3 ? std::atoi(argv[3]) : 4;

  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.path = "optimize_network.cache";

  CompiledNet compiled = compile(graph::build_net(net), cfg);
  std::printf("%s: %zu nodes, %lld tuned conv layers (batch %lld over %d "
              "core groups)\n\n",
              net.c_str(), compiled.graph().nodes().size(),
              static_cast<long long>(compiled.graph().conv_count()),
              static_cast<long long>(batch), groups);

  graph::NetOptions opts;
  opts.groups = groups;
  opts.mode = sim::ExecMode::TimingOnly;
  const graph::NetRunResult r = compiled.run(batch, opts);

  std::printf("%-14s%-10s%-12s%-10s\n", "layer", "method", "GFLOPS",
              "ms/layer");
  for (const auto& l : r.layers) {
    if (!l.conv) continue;
    std::printf("%-14s%-10s%-12.1f%-10.3f%s%s\n", l.name.c_str(),
                l.kind.c_str(), l.gflops,
                l.cycles / compiled.config().machine.clock_ghz / 1e6,
                l.fused ? "(fused)" : "", l.from_cache ? "(cached)" : "");
  }

  std::printf("\nfusion: %d conv(s) absorbed their elementwise tails; "
              "residency pinned %lld tensor(s), eliding %.1f MB of DMA\n",
              r.fusion.convs_fused,
              static_cast<long long>(r.resident_tensors),
              static_cast<double>(r.dma_bytes_elided) / (1024.0 * 1024.0));
  std::printf("schedules: %lld distinct, %lld served from cache; tuning "
              "%.2fs\n",
              static_cast<long long>(r.shapes_tuned),
              static_cast<long long>(r.cache_hits), r.tune_seconds);
  std::printf("activation arena: %.1f MB planned peak vs %.1f MB no-reuse\n",
              static_cast<double>(r.planned_peak_floats) * 4.0 / 1e6,
              static_cast<double>(r.naive_floats) * 4.0 / 1e6);
  std::printf("chip (%d CGs): %.1f GFLOPS (%.1f%% of peak), %.2f ms/batch, "
              "%.2f ms/image\n",
              r.groups_used, r.gflops, 100.0 * r.efficiency, r.ms_per_batch,
              r.ms_per_image);

  // Re-run: every distinct schedule now comes out of the warmed cache.
  const graph::NetRunResult again = compiled.run(batch, opts);
  std::printf("\nsecond run: %lld/%lld schedules from cache, tuning %.2fs\n",
              static_cast<long long>(again.cache_hits),
              static_cast<long long>(again.shapes_tuned), again.tune_seconds);
  return 0;
}
