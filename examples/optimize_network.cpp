// swATOP as an offline compiler for a whole network: tune every conv layer
// of VGG16 / ResNet / YOLO with the best applicable method, report per-layer
// and end-to-end numbers, and show the chip-level (4 core group) projection.
//
//   $ ./optimize_network [vgg16|resnet|yolo] [batch]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/chip_parallel.hpp"
#include "core/swatop.hpp"
#include "nets/nets.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"

using namespace swatop;

namespace {

double tuned(const dsl::OperatorDef& op, const sim::SimConfig& machine) {
  SwatopConfig c;
  c.machine = machine;
  c.measure_best = true;
  return Optimizer(c).optimize(op).measured_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::SimConfig cfg;
  const std::string net = argc > 1 ? argv[1] : "vgg16";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 32;

  std::vector<nets::LayerDef> layers;
  if (net == "vgg16")
    layers = nets::vgg16();
  else if (net == "resnet")
    layers = nets::resnet();
  else if (net == "yolo")
    layers = nets::yolo();
  else {
    std::fprintf(stderr, "unknown network '%s'\n", net.c_str());
    return 1;
  }

  std::printf("%s at batch %lld -- per-layer best method (one core group)\n",
              net.c_str(), static_cast<long long>(batch));
  std::printf("%-12s%-10s%-12s%-10s\n", "layer", "method", "GFLOPS",
              "ms/layer");
  double total_cycles = 0.0;
  std::int64_t total_flops = 0;
  for (const auto& l : layers) {
    const ops::ConvShape s = nets::to_shape(l, batch);
    double best = -1.0;
    const char* method = "explicit";
    {
      const double t =
          tuned(ops::ExplicitConvOp(s), cfg) +
          ops::ExplicitConvOp::pre_post_cycles(s, cfg);
      best = t;
    }
    if (ops::ImplicitConvOp::applicable(s)) {
      const double t = tuned(ops::ImplicitConvOp(s), cfg);
      if (t < best) {
        best = t;
        method = "implicit";
      }
    }
    if (ops::WinogradPlan::applicable(s) && s.ni % 8 == 0) {
      const ops::WinogradPlan plan(s);
      const double t = tuned(ops::WinogradGemmOp(s), cfg) +
                       ops::WinogradGemmOp::pre_post_cycles(plan, cfg);
      if (t < best) {
        best = t;
        method = "winograd";
      }
    }
    total_cycles += best;
    total_flops += s.flops();
    std::printf("%-12s%-10s%-12.1f%-10.3f\n", l.name.c_str(), method,
                static_cast<double>(s.flops()) / best * cfg.clock_ghz,
                best / cfg.clock_ghz / 1e6);
  }
  std::printf("\nnetwork total: %.1f GFLOPS effective, %.2f ms per batch "
              "(one core group)\n",
              static_cast<double>(total_flops) / total_cycles * cfg.clock_ghz,
              total_cycles / cfg.clock_ghz / 1e6);

  if (batch >= 4) {
    std::printf("\nchip-level projection (batch split over 4 core groups), "
                "implicit-conv layers only:\n");
    double chip_gflops_example = 0.0;
    for (const auto& l : layers) {
      const ops::ConvShape s = nets::to_shape(l, batch);
      if (!ops::ImplicitConvOp::applicable(s)) continue;
      const ChipRunResult r = run_conv_data_parallel(s, 4, cfg);
      chip_gflops_example = r.gflops;
      std::printf("  %-12s %8.1f GFLOPS (%4.1f%% of the 3.0 TFLOPS chip)\n",
                  l.name.c_str(), r.gflops, r.efficiency * 100.0);
    }
    (void)chip_gflops_example;
  }
  return 0;
}
