// swATOP as a whole-network compiler: deduplicate the layer table with
// nets::distinct(), tune each distinct shape once into the persistent
// schedule cache, then hand the network to the graph engine, which plans
// the activation arena and executes end-to-end on the simulated chip with
// the batch split across core groups.
//
//   $ ./optimize_network [vgg16|resnet|yolo] [batch] [groups]
//
// Re-runs are instant: both phases hit the schedule cache file.
#include <cstdio>
#include <string>

#include "core/swatop.hpp"
#include "graph/build.hpp"
#include "graph/engine.hpp"
#include "nets/nets.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"

using namespace swatop;

int main(int argc, char** argv) {
  const std::string net = argc > 1 ? argv[1] : "vgg16";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 32;
  const int groups = argc > 3 ? std::atoi(argv[3]) : 4;

  std::vector<nets::LayerDef> layers;
  if (net == "vgg16")
    layers = nets::vgg16();
  else if (net == "resnet")
    layers = nets::resnet();
  else if (net == "yolo")
    layers = nets::yolo();
  else {
    std::fprintf(stderr, "unknown network '%s'\n", net.c_str());
    return 1;
  }

  SwatopConfig cfg;
  cfg.cache.enabled = true;
  cfg.cache.path = "optimize_network.cache";

  // Phase 1: tune each *distinct* layer shape once, at the per-group
  // sub-batch the engine will run, banking the winners in the cache --
  // repeated layers (conv3_2 == conv3_3, ...) never re-enumerate a space.
  const std::vector<nets::LayerDef> uniq = nets::distinct(layers);
  // An uneven split gives some groups ceil(batch/groups) images and some
  // floor; tune both sub-batch sizes when they differ.
  std::vector<std::int64_t> sub_batches{batch / groups +
                                        (batch % groups != 0 ? 1 : 0)};
  if (batch % groups != 0 && batch / groups >= 1)
    sub_batches.push_back(batch / groups);
  std::printf("%s: %zu layers, %zu distinct shapes (batch %lld over %d "
              "core groups)\n",
              net.c_str(), layers.size(), uniq.size(),
              static_cast<long long>(batch), groups);
  {
    Optimizer opt(cfg);
    int hits = 0;
    for (const nets::LayerDef& l : uniq) {
      for (std::int64_t b : sub_batches) {
        const ops::ConvShape s = nets::to_shape(l, b);
        const bool hit =
            ops::ImplicitConvOp::applicable(s)
                ? opt.optimize(ops::ImplicitConvOp(s)).from_cache
                : opt.optimize(ops::ExplicitConvOp(s)).from_cache;
        hits += hit ? 1 : 0;
      }
    }
    std::printf("pre-tuned %zu shapes into %s (%d cache hits)\n\n",
                uniq.size() * sub_batches.size(), cfg.cache.path.c_str(),
                hits);
  }

  // Phase 2: whole-network execution on the engine (timing mode -- the
  // stand-in for a hardware deployment run). Every layer's schedule comes
  // out of the cache warmed above.
  graph::GraphEngine engine(cfg);
  graph::NetOptions opts;
  opts.groups = groups;
  opts.mode = sim::ExecMode::TimingOnly;
  const graph::NetRunResult r = engine.run(graph::build_net(net), batch, opts);

  std::printf("%-14s%-10s%-12s%-10s\n", "layer", "method", "GFLOPS",
              "ms/layer");
  for (const auto& l : r.layers) {
    if (!l.conv) continue;
    std::printf("%-14s%-10s%-12.1f%-10.3f%s\n", l.name.c_str(),
                l.kind.c_str(), l.gflops,
                l.cycles / engine.config().machine.clock_ghz / 1e6,
                l.from_cache ? "(cached)" : "");
  }

  std::printf("\nschedules: %lld distinct, %lld served from cache; tuning "
              "%.2fs\n",
              static_cast<long long>(r.shapes_tuned),
              static_cast<long long>(r.cache_hits), r.tune_seconds);
  std::printf("activation arena: %.1f MB planned peak vs %.1f MB no-reuse\n",
              static_cast<double>(r.planned_peak_floats) * 4.0 / 1e6,
              static_cast<double>(r.naive_floats) * 4.0 / 1e6);
  std::printf("chip (%d CGs): %.1f GFLOPS (%.1f%% of peak), %.2f ms/batch, "
              "%.2f ms/image\n",
              r.groups_used, r.gflops, 100.0 * r.efficiency, r.ms_per_batch,
              r.ms_per_image);
  return 0;
}
