// Quickstart: tune one matrix multiplication, run the generated schedule
// functionally on the simulated SW26010 core group, and validate it -- the
// whole pipeline is compile() + run() + check().
//
//   $ ./quickstart [M N K]
#include <cstdio>
#include <cstdlib>

#include "graph/compile.hpp"
#include "ops/matmul.hpp"

int main(int argc, char** argv) {
  using namespace swatop;
  const std::int64_t M = argc > 1 ? std::atoll(argv[1]) : 300;
  const std::int64_t N = argc > 2 ? std::atoll(argv[2]) : 200;
  const std::int64_t K = argc > 3 ? std::atoll(argv[3]) : 150;

  // 1. Describe the operator. MatmulOp carries both the computation (the
  //    schedule seed) and the schedule space (split factors, loop orders,
  //    kernel variants, boundary strategies).
  ops::MatmulOp op(M, N, K);

  // 2. Compile: the performance-model-based autotuner scores every valid
  //    schedule strategy and picks the predicted best; the handle owns the
  //    generated code, the core group and the tuning journal.
  const SwatopConfig cfg;
  CompiledOp compiled = compile(op, cfg);
  const OptimizedOperator& tuned = compiled.handle();

  std::printf("operator:        %s\n", op.name().c_str());
  std::printf("schedule space:  %lld strategies, %lld valid after pruning\n",
              static_cast<long long>(tuned.stats.space_size),
              static_cast<long long>(tuned.stats.valid_candidates));
  std::printf("picked strategy: %s\n",
              tuned.candidate.strategy.to_string().c_str());
  std::printf("tuning took:     %.3f s\n", tuned.stats.seconds);

  // 3. Run functionally and validate against the naive reference.
  const rt::RunResult r = compiled.run();
  const double err = compiled.check();

  std::printf("\nsimulated execution:\n");
  std::printf("  cycles:        %.0f\n", r.cycles);
  std::printf("  achieved:      %.1f GFLOPS (%.1f%% of peak)\n",
              r.gflops(op.flops(), cfg.machine),
              r.gflops(op.flops(), cfg.machine) /
                  cfg.machine.peak_gflops() * 100.0);
  std::printf("  DMA traffic:   %lld bytes requested, %lld wasted in "
              "transactions\n",
              static_cast<long long>(r.stats.dma_bytes_requested),
              static_cast<long long>(r.stats.dma_bytes_wasted));
  std::printf("  max |err| vs naive reference: %.2e %s\n", err,
              err < 2e-3 ? "(OK)" : "(FAILED)");
  return err < 2e-3 ? 0 : 1;
}
