// Tune a real CNN convolution layer (VGG16 conv4_2 by default) with the
// implicit-GEMM design, compare against the swDNN-like manual baseline, and
// show what the autotuner chose.
//
//   $ ./tune_conv_layer [batch]
#include <cstdio>
#include <cstdlib>

#include "baseline/swdnn_conv.hpp"
#include "graph/compile.hpp"
#include "ir/printer.hpp"
#include "nets/nets.hpp"
#include "ops/implicit_conv.hpp"

int main(int argc, char** argv) {
  using namespace swatop;
  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 32;

  const auto layers = nets::vgg16();
  const ops::ConvShape shape = nets::to_shape(layers[8], batch);  // conv4_2
  std::printf("layer: VGG16 %s  (%s)\n", layers[8].name.c_str(),
              shape.to_string().c_str());

  ops::ImplicitConvOp op(shape);
  SwatopConfig cfg;
  cfg.measure_best = true;  // also run the winner through the interpreter
  CompiledOp compiled = compile(op, cfg);
  const OptimizedOperator& tuned = compiled.handle();
  const double swatop_cycles = tuned.measured_cycles;
  std::printf("\nswATOP: %lld-strategy space tuned in %.2f s\n",
              static_cast<long long>(tuned.stats.space_size),
              tuned.stats.seconds);
  std::printf("picked: %s\n", tuned.candidate.strategy.to_string().c_str());
  std::printf("measured: %.0f cycles = %.1f GFLOPS\n", swatop_cycles,
              static_cast<double>(shape.flops()) / swatop_cycles *
                  compiled.config().machine.clock_ghz);

  if (baseline::SwDnnConv::applicable(shape)) {
    const double manual =
        baseline::SwDnnConv(compiled.config().machine).cycles(shape);
    std::printf("swDNN manual schedule: %.0f cycles -> swATOP speedup "
                "%.2fx\n",
                manual, manual / swatop_cycles);
  } else {
    std::printf("swDNN has no manual implementation for this shape "
                "(batch %lld); swATOP covers it anyway\n",
                static_cast<long long>(batch));
  }

  std::printf("\ntuned schedule IR:\n%s",
              ir::print(tuned.candidate.program).c_str());
  return 0;
}
