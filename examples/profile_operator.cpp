// Observability demo: tune a conv layer with profiling enabled, execute it,
// and dump (a) a Chrome trace-event JSON you can open in chrome://tracing
// or https://ui.perfetto.dev, and (b) a human-readable text report of where
// the cycles went (DMA occupancy, wasted transaction bytes, pipeline issue
// mix, SPM footprint, tuner model-vs-measured accuracy).
//
//   $ ./profile_operator [trace.json]
#include <cstdio>
#include <fstream>

#include "graph/compile.hpp"
#include "nets/nets.hpp"
#include "obs/attribution.hpp"
#include "obs/roofline.hpp"
#include "ops/implicit_conv.hpp"
#include "tune/journal.hpp"

int main(int argc, char** argv) {
  using namespace swatop;
  const char* trace_path = argc > 1 ? argv[1] : "profile_operator.trace.json";

  const auto layers = nets::vgg16();
  const ops::ConvShape shape = nets::to_shape(layers[8], 8);  // conv4_2
  std::printf("profiling VGG16 %s (%s)\n\n", layers[8].name.c_str(),
              shape.to_string().c_str());
  ops::ImplicitConvOp op(shape);

  SwatopConfig cfg;
  cfg.observability.enabled = true;  // counters + trace
  cfg.tune_top_k = 4;  // measure the 4 model-ranked best (traced too)

  // compile() owns the tuning journal: every candidate the tuner considers
  // is recorded without the caller wiring anything up.
  CompiledOp compiled = compile(op, cfg);
  const rt::RunResult r = compiled.run(sim::ExecMode::TimingOnly);
  std::printf("picked %s: %.0f cycles measured, %.1f GFLOPS\n\n",
              compiled.handle().candidate.strategy.to_string().c_str(),
              r.cycles, r.gflops(op.flops(), cfg.machine));

  // The profile snapshot rides on the run result.
  std::fputs(r.profile.report().c_str(), stdout);

  // Exact cycle attribution + roofline placement from the same counters,
  // and what the tuner's search looked like.
  const obs::Attribution attr = obs::attribute(r.profile.counters);
  std::printf("\n%s", obs::attribution_report(attr).c_str());
  const obs::RooflineMachine m = {cfg.machine.peak_flops_per_cycle(),
                                  cfg.machine.dma_bytes_per_cycle()};
  const std::vector<obs::RooflinePoint> pts = {
      obs::roofline_place(op.name(), r.profile.counters, m)};
  std::printf("\n%s", obs::roofline_report(pts, m).c_str());
  std::printf("\n%s", tune::journal_summary(compiled.journal()).c_str());

  std::ofstream out(trace_path);
  r.profile.write_chrome_trace(out);
  std::printf("\nwrote %s -- open it in chrome://tracing or "
              "https://ui.perfetto.dev\n",
              trace_path);
  return out.good() ? 0 : 1;
}
