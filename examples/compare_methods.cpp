// Compare the three convolution designs (implicit / Winograd / explicit
// GEMM) on one layer across batch sizes -- the method-selection decision the
// paper's Fig. 8 informs.
//
//   $ ./compare_methods [ni no out_hw]
#include <cstdio>
#include <cstdlib>

#include "graph/compile.hpp"
#include "ops/explicit_conv.hpp"
#include "ops/implicit_conv.hpp"
#include "ops/winograd.hpp"
#include "sim/config.hpp"

using namespace swatop;

namespace {

double tuned(const dsl::OperatorDef& op, const sim::SimConfig& machine) {
  SwatopConfig c;
  c.machine = machine;
  c.measure_best = true;
  return compile(op, c).handle().measured_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::SimConfig cfg;
  const std::int64_t ni = argc > 1 ? std::atoll(argv[1]) : 128;
  const std::int64_t no = argc > 2 ? std::atoll(argv[2]) : 128;
  const std::int64_t hw = argc > 3 ? std::atoll(argv[3]) : 28;

  std::printf("%-8s%-14s%-14s%-14s\n", "batch", "implicit", "winograd",
              "explicit");
  for (const std::int64_t b : {1, 8, 32}) {
    ops::ConvShape s;
    s.batch = b;
    s.ni = ni;
    s.no = no;
    s.ri = hw + 2;
    s.ci = hw + 2;

    double t_imp = -1, t_win = -1, t_exp = -1;
    if (ops::ImplicitConvOp::applicable(s))
      t_imp = tuned(ops::ImplicitConvOp(s), cfg);
    if (ops::WinogradPlan::applicable(s)) {
      const ops::WinogradPlan plan(s);
      t_win = tuned(ops::WinogradGemmOp(s), cfg) +
              ops::WinogradGemmOp::pre_post_cycles(plan, cfg);
    }
    t_exp = tuned(ops::ExplicitConvOp(s), cfg) +
            ops::ExplicitConvOp::pre_post_cycles(s, cfg);

    auto gf = [&](double cyc) {
      return cyc > 0 ? static_cast<double>(s.flops()) / cyc * cfg.clock_ghz
                     : 0.0;
    };
    std::printf("%-8lld%-14s%-14s%-14s\n", static_cast<long long>(b),
                t_imp > 0 ? (std::to_string(static_cast<int>(gf(t_imp))) +
                             " GFLOPS")
                                .c_str()
                          : "n/a",
                t_win > 0 ? (std::to_string(static_cast<int>(gf(t_win))) +
                             " GFLOPS")
                                .c_str()
                          : "n/a",
                (std::to_string(static_cast<int>(gf(t_exp))) + " GFLOPS")
                    .c_str());
  }
  std::printf("\nWinograd can exceed direct-conv peak (it does less "
              "arithmetic); explicit pays the im2col memory passes.\n");
  return 0;
}
